//! Word-level tid-set kernels shared by [`crate::TidSet`] and external
//! structure-of-arrays pools.
//!
//! The ball-query engine in `cfp-core` keeps tid-sets as contiguous `u64`
//! word slabs (one slab per pool) instead of `Vec<TidSet>`, so the hot
//! distance kernels are exposed here over raw word slices plus cached
//! cardinalities. With `|A|` and `|B|` known up front, a Jaccard distance
//! needs a single intersection popcount (`|A ∪ B| = |A| + |B| − |A ∩ B|`)
//! instead of the two popcounts per word the naive formulation pays, and a
//! radius test can abort the word loop as soon as the remaining words cannot
//! lift the intersection above the required threshold.

/// `|a ∩ b|` over word slices.
#[inline]
pub fn intersection_count_words(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x & y).count_ones() as usize)
        .sum()
}

/// `|a ∩ b|` if it reaches `threshold`, else `None` — aborting the word loop
/// once the bits not yet scanned cannot close the gap.
///
/// `card_a` / `card_b` are the cached cardinalities of `a` / `b`; the running
/// upper bound is `seen ∩ + min(unseen a-bits, unseen b-bits)`, which only
/// shrinks, so the first violation is final.
#[inline]
pub fn intersection_count_at_least_words(
    a: &[u64],
    card_a: usize,
    b: &[u64],
    card_b: usize,
    threshold: usize,
) -> Option<usize> {
    debug_assert_eq!(a.len(), b.len());
    if card_a.min(card_b) < threshold {
        return None;
    }
    let mut inter = 0usize;
    let mut seen_a = 0usize;
    let mut seen_b = 0usize;
    for (x, y) in a.iter().zip(b) {
        inter += (x & y).count_ones() as usize;
        seen_a += x.count_ones() as usize;
        seen_b += y.count_ones() as usize;
        if inter + (card_a - seen_a).min(card_b - seen_b) < threshold {
            return None;
        }
    }
    (inter >= threshold).then_some(inter)
}

/// Jaccard distance `1 − |a ∩ b| / |a ∪ b|` from one intersection popcount
/// and the cached cardinalities. Distance between two empty sets is `0`.
#[inline]
pub fn jaccard_words(a: &[u64], card_a: usize, b: &[u64], card_b: usize) -> f64 {
    let inter = intersection_count_words(a, b);
    jaccard_from_counts(inter, card_a, card_b)
}

/// Jaccard distance given `|a ∩ b|` and the two cardinalities.
#[inline]
pub fn jaccard_from_counts(inter: usize, card_a: usize, card_b: usize) -> f64 {
    let union = card_a + card_b - inter;
    if union == 0 {
        0.0
    } else {
        1.0 - inter as f64 / union as f64
    }
}

/// Shared shell of the radius-bounded Jaccard kernels: empty-set
/// convention, the abort-threshold derivation, and the exact acceptance
/// test, with the bounded intersection count injected by the caller.
///
/// The acceptance test is **exactly** `jaccard_from_counts(..) <= radius` —
/// the same float expression a brute-force scan evaluates — so callers
/// pruning with these kernels return bit-identical balls. The integer abort
/// threshold is derived from `d ≤ r ⟺ |∩| ≥ (1−r)(|A|+|B|)/(2−r)` and
/// slackened by one to absorb float rounding, which can only cause a
/// harmless extra exact check, never a false reject. For `radius ≥ 1` the
/// threshold degenerates to 0 (Jaccard never exceeds 1, and the derivation's
/// denominator changes sign at 2).
#[inline]
fn jaccard_within_via(
    card_a: usize,
    card_b: usize,
    radius: f64,
    intersection_at_least: impl FnOnce(usize) -> Option<usize>,
) -> Option<f64> {
    if card_a == 0 && card_b == 0 {
        // Both empty: distance is 0 by convention.
        return (radius >= 0.0).then_some(0.0);
    }
    let threshold = if radius >= 1.0 {
        0
    } else {
        let needed = ((1.0 - radius) * (card_a + card_b) as f64) / (2.0 - radius);
        (needed.floor() as usize).saturating_sub(1)
    };
    let inter = intersection_at_least(threshold)?;
    let d = jaccard_from_counts(inter, card_a, card_b);
    (d <= radius).then_some(d)
}

/// `Some(distance)` when `jaccard(a, b) ≤ radius`, else `None`, with the
/// bounded early-exit intersection kernel doing the heavy lifting (see
/// [`jaccard_within_via`] for the threshold contract).
#[inline]
pub fn jaccard_within_words(
    a: &[u64],
    card_a: usize,
    b: &[u64],
    card_b: usize,
    radius: f64,
) -> Option<f64> {
    jaccard_within_via(card_a, card_b, radius, |threshold| {
        intersection_count_at_least_words(a, card_a, b, card_b, threshold)
    })
}

/// Superblock width, in words, of the suffix-cardinality tables used by the
/// arena kernels below.
pub const SUFFIX_STRIDE: usize = 8;

/// Suffix popcounts at [`SUFFIX_STRIDE`] granularity:
/// `out[k] = popcount(words[k·STRIDE ..])`, with a trailing `0` sentinel.
///
/// A pool precomputes one table per pattern (a few bytes each); the scan
/// kernel then gets a *strong* early-exit bound — remaining intersection ≤
/// `min` of both sets' unscanned bits — for one array lookup per superblock
/// instead of popcounting both operands at every word.
pub fn suffix_cards(words: &[u64]) -> Vec<u32> {
    let mut out = Vec::new();
    suffix_cards_into(words, &mut out);
    out
}

/// [`suffix_cards`] appending into an existing buffer — the arena build path
/// computes one table per pool pattern per iteration and must not allocate
/// per pattern.
pub fn suffix_cards_into(words: &[u64], out: &mut Vec<u32>) {
    let blocks = words.len().div_ceil(SUFFIX_STRIDE);
    let base = out.len();
    out.resize(base + blocks + 1, 0);
    for k in (0..blocks).rev() {
        let start = k * SUFFIX_STRIDE;
        let end = (start + SUFFIX_STRIDE).min(words.len());
        out[base + k] = out[base + k + 1]
            + words[start..end]
                .iter()
                .map(|w| w.count_ones())
                .sum::<u32>();
    }
}

/// [`intersection_count_at_least_words`] with the bound coming from
/// precomputed [`suffix_cards`] tables: one AND + one popcount per word
/// (half the popcounts of a naive two-popcount Jaccard) plus one bound check
/// per [`SUFFIX_STRIDE`] words.
#[inline]
pub fn intersection_count_at_least_suffix(
    a: &[u64],
    suffix_a: &[u32],
    b: &[u64],
    suffix_b: &[u32],
    threshold: usize,
) -> Option<usize> {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(suffix_a.len(), suffix_b.len());
    if (suffix_a[0].min(suffix_b[0]) as usize) < threshold {
        return None;
    }
    let blocks = suffix_a.len() - 1;
    let mut inter = 0usize;
    for k in 0..blocks {
        let start = k * SUFFIX_STRIDE;
        let end = (start + SUFFIX_STRIDE).min(a.len());
        for i in start..end {
            inter += (a[i] & b[i]).count_ones() as usize;
        }
        if inter + (suffix_a[k + 1].min(suffix_b[k + 1]) as usize) < threshold {
            return None;
        }
    }
    (inter >= threshold).then_some(inter)
}

/// [`jaccard_within_words`] driven by the suffix-table kernel — the ball
/// scan's hot path. Acceptance is the same exact float comparison.
#[inline]
pub fn jaccard_within_suffix(
    a: &[u64],
    suffix_a: &[u32],
    b: &[u64],
    suffix_b: &[u32],
    radius: f64,
) -> Option<f64> {
    jaccard_within_via(
        suffix_a[0] as usize,
        suffix_b[0] as usize,
        radius,
        |threshold| intersection_count_at_least_suffix(a, suffix_a, b, suffix_b, threshold),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(bits: &[usize], universe: usize) -> (Vec<u64>, usize) {
        let mut w = vec![0u64; universe.div_ceil(64)];
        for &b in bits {
            w[b / 64] |= 1 << (b % 64);
        }
        (w, bits.len())
    }

    #[test]
    fn intersection_count_matches_naive() {
        let (a, _) = words(&[1, 2, 3, 64, 130], 200);
        let (b, _) = words(&[2, 3, 64, 131], 200);
        assert_eq!(intersection_count_words(&a, &b), 3);
    }

    #[test]
    fn at_least_kernel_is_exact_when_it_returns() {
        let (a, ca) = words(&[0, 1, 2, 3, 70, 71], 160);
        let (b, cb) = words(&[2, 3, 70, 100], 160);
        assert_eq!(
            intersection_count_at_least_words(&a, ca, &b, cb, 0),
            Some(3)
        );
        assert_eq!(
            intersection_count_at_least_words(&a, ca, &b, cb, 3),
            Some(3)
        );
        assert_eq!(intersection_count_at_least_words(&a, ca, &b, cb, 4), None);
        // Cardinality precheck: min(|A|,|B|) < threshold without scanning.
        assert_eq!(intersection_count_at_least_words(&a, ca, &b, cb, 5), None);
    }

    #[test]
    fn jaccard_within_agrees_with_direct_formula() {
        let (a, ca) = words(&[1, 2, 3, 7], 10);
        let (b, cb) = words(&[2, 3, 4], 10);
        // d = 1 - 2/5 = 0.6
        let d = jaccard_words(&a, ca, &b, cb);
        assert!((d - 0.6).abs() < 1e-12);
        assert_eq!(jaccard_within_words(&a, ca, &b, cb, 0.6), Some(d));
        assert_eq!(jaccard_within_words(&a, ca, &b, cb, 0.59), None);
        assert_eq!(jaccard_within_words(&a, ca, &b, cb, 1.0), Some(d));
    }

    #[test]
    fn empty_sets_have_zero_distance() {
        let (a, ca) = words(&[], 100);
        let (b, cb) = words(&[], 100);
        assert_eq!(jaccard_within_words(&a, ca, &b, cb, 0.0), Some(0.0));
        let (c, cc) = words(&[5], 100);
        assert_eq!(jaccard_words(&a, ca, &c, cc), 1.0);
    }

    #[test]
    fn suffix_tables_and_kernel_match_plain_kernels() {
        // Multi-superblock universe so aborts can fire mid-scan.
        let universe = 64 * 24;
        let a_bits: Vec<usize> = (0..universe).filter(|i| i % 3 == 0).collect();
        let b_bits: Vec<usize> = (0..universe).filter(|i| i % 5 == 0 && *i < 700).collect();
        let (a, ca) = words(&a_bits, universe);
        let (b, cb) = words(&b_bits, universe);
        let sa = suffix_cards(&a);
        let sb = suffix_cards(&b);
        assert_eq!(sa[0] as usize, ca);
        assert_eq!(*sa.last().unwrap(), 0);
        let inter = intersection_count_words(&a, &b);
        for t in [0, 1, inter, inter + 1, inter + 50] {
            assert_eq!(
                intersection_count_at_least_suffix(&a, &sa, &b, &sb, t),
                intersection_count_at_least_words(&a, ca, &b, cb, t),
                "threshold {t}"
            );
        }
        for r in [0.0, 0.3, 0.5, 0.8, 0.95, 1.0] {
            assert_eq!(
                jaccard_within_suffix(&a, &sa, &b, &sb, r),
                jaccard_within_words(&a, ca, &b, cb, r),
                "radius {r}"
            );
        }
    }

    #[test]
    fn boundary_radii_match_brute_force_over_small_universe() {
        // Every pair of subsets of a 6-bit universe, every rational radius
        // i/u: the kernel must agree with the direct float comparison.
        for ma in 0u64..64 {
            for mb in 0u64..64 {
                let a = [ma];
                let b = [mb];
                let ca = ma.count_ones() as usize;
                let cb = mb.count_ones() as usize;
                let d = jaccard_words(&a, ca, &b, cb);
                for num in 0..=6usize {
                    for den in 1..=6usize {
                        let r = num as f64 / den as f64;
                        let want = d <= r;
                        let got = jaccard_within_words(&a, ca, &b, cb, r).is_some();
                        assert_eq!(got, want, "ma={ma:b} mb={mb:b} r={r}");
                    }
                }
            }
        }
    }
}
