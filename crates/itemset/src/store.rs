//! The columnar pattern slab: one lane-aligned tid-set region shared by
//! every layer of the mining pipeline.
//!
//! Pattern-Fusion's cost model assumes the pool is the hot data structure,
//! yet a `Vec<Pattern>`-shaped pool scatters every support set behind its
//! own heap pointer and forces each downstream layer (ball index, shard
//! runner) to re-materialize the tid-sets in its own layout. A
//! [`PatternPool`] stores patterns **columnar and append-only** instead:
//!
//! * one shared [`AlignedWords`] tid region — row `r`'s support-set words at
//!   `r * words_per_row ..`, every row lane-aligned per the kernel layout
//!   contract ([`crate::kernels`]);
//! * a parallel suffix-table column ([`kernels::suffix_cards`]) computed
//!   once at append time, so every consumer of the bounded-Jaccard kernels
//!   (ball index arenas, shard scans) reuses it instead of re-deriving it
//!   per rebuild;
//! * itemset spans (offsets into one `u32` item column) and cached supports.
//!
//! Rows are addressed by dense `u32` ids that stay valid for the slab's
//! lifetime, so pools, shard sub-pools, archives, and index arenas are all
//! plain row-id lists over the same storage — no tid-set is ever copied
//! between layers.
//!
//! # On-disk slab format (`CFPSLAB`, version 1)
//!
//! Because the slab is already columnar POD, its persistent form
//! ([`crate::slab_io`]) is a direct image of the columns — dump streams
//! them, load reads them straight back into their final buffers:
//!
//! ```text
//! offset  size             field
//! ------  ---------------  ------------------------------------------
//!      0  8                magic "CFPSLAB\0"
//!      8  4                format version (u32, = 1)
//!     12  4                endianness tag (u32, = 0x0A0BC0DE)
//!     16  5 × 8            header: universe, words_per_row, suf_stride,
//!                          rows, item_data_len (u64 each)
//!     56  5 × 8            section table: byte length of each section
//!                          below, in order (u64 each)
//!     96  rows·wpr·8       section 1: tid words   (u64 column)
//!      …  rows·ss·4        section 2: suffix tables (u32 column)
//!      …  (rows+1)·4       section 3: item offsets  (u32 column)
//!      …  item_data_len·4  section 4: item data     (u32 column)
//!      …  rows·4           section 5: supports      (u32 column)
//!   last  4                CRC-32 (IEEE) over every preceding byte
//! ------  ---------------  ------------------------------------------
//! ```
//!
//! **Versioning**: the major format version is a hard gate — a reader
//! rejects any version it does not know (`SlabIoError::UnsupportedVersion`);
//! there are no minor/feature bits. **Endianness**: every field and every
//! column element is little-endian on disk, regardless of host order; the
//! tag at offset 12 is a fixed LE constant, so a byte-swapped file is
//! detected before any column is read. **Alignment**: the derived widths
//! (`words_per_row`, `suf_stride`) are *recomputed* from `universe` on load
//! and must match the header — so a loaded tid column always lands in a
//! fresh 32-byte-aligned, lane-padded [`AlignedWords`] buffer, and loaded
//! slabs satisfy the kernel layout contract ([`crate::kernels`]) verbatim.
//! **Integrity**: the trailing CRC covers header and sections; truncation,
//! bit-flips, and mismatched section tables each surface as a typed
//! [`crate::slab_io::SlabIoError`], never a panic.
//!
//! # Worker interchange protocol (version 1)
//!
//! CFPSLAB doubles as the interchange format of the subprocess shard
//! executor (`cfp_core::executor`): the parent ships each shard to a
//! `cfp shard-worker` child as a slab file and reads the shard's archive
//! back as another. The protocol is deliberately file-plus-argv — no
//! streaming over pipes — so a worker's inputs are inspectable and
//! replayable after a failure.
//!
//! **Request** (argv): the parent spawns `<worker> shard-worker
//! --protocol 1 --shard S --shards N --input IN.slab --output OUT.slab`
//! followed by the full fusion configuration (`--k`, `--mincount`,
//! `--tau`, `--pool-len`, `--attempts`, `--max-results`,
//! `--max-iterations`, `--max-ball-size`, `--ball-pivots`, `--seed`, and
//! the optional `--archive-cap`, `--no-archive`, `--no-parallel`,
//! `--threads`, `--closure`, `--db`). A worker rejects any protocol
//! version or flag it does not know — unknown flags are a hard error,
//! never silently ignored, so parent/worker version skew cannot mine
//! with a half-applied configuration.
//!
//! **Slab layout**: `IN.slab` holds the shard's sub-pool in the parent's
//! partition order — the worker mines rows `0..rows` in slab order, so
//! the sub-pool's row order (not content hashing) carries the
//! determinism contract across the process boundary. `OUT.slab` holds
//! the shard's archive rows in the worker's deterministic output order;
//! the parent re-interns them against its own base slab, restoring
//! row-id identity for the deterministic merge.
//!
//! **Stats record** (worker stdout, line-oriented ASCII): a handshake
//! line `cfp-shard-worker <version> shard=<S>`, then `key value` pairs
//! (`pool_size`, `patterns`, `iterations`, `converged`, `tombstoned`,
//! `inserted`, `compactions`, and the `ball.*` counters, with
//! `ball.pivot_prune_counts` as one space-separated row of per-pivot
//! totals), closed by a literal `end` line. The parent parses strictly —
//! a missing terminator, an unknown key, or a `pool_size` that does not
//! match what was shipped is a typed worker failure, because per-shard
//! counters are part of the bit-identity gate, not best-effort telemetry.
//!
//! **Exit codes**: `0` success (record on stdout); `2` slab I/O failure
//! (the typed `SlabIoError` text goes to stderr); `3` malformed request
//! or dataset. Anything else — a crash, a kill, a wrong binary — is
//! surfaced by the parent as a typed worker-death error carrying the
//! shard index, exit status, and captured stderr.
//!
//! # Worker interchange protocol (version 2, networked)
//!
//! The networked shard executor (`cfp_core::net`: coordinator ↔
//! `cfp shard-host` over TCP) speaks version 2: the same CFPSLAB bytes,
//! re-framed for a socket. Every frame is
//!
//! ```text
//! offset  size   field
//! ------  -----  --------------------------------------------------
//!      0  1      kind (u8)
//!      1  4      payload length (u32 LE, ≤ 8 MiB)
//!      5  len    payload
//!  5+len  4      CRC-32 (IEEE) over kind + length + payload (LE)
//! ------  -----  --------------------------------------------------
//! ```
//!
//! Frame kinds: `1` request, `2` slab chunk, `3` slab end, `4`
//! heartbeat, `5` stats record, `6` error, `7` bye. A short read, a bad
//! CRC, an unknown kind, or an over-cap length is a typed corrupt-frame
//! failure — never a panic, never a partial merge.
//!
//! **Handshake** (request payload, ASCII): `cfp-net 2 shard=<S>
//! shards=<N> attempt=<A>` on the first line, then the same
//! configuration flags as the version-1 argv request, one token per
//! line. A host rejects unknown versions and unknown flags exactly as a
//! version-1 worker does. `attempt` makes redelivery explicit: a host
//! treats every attempt as idempotent (same sub-pool → same answer).
//!
//! **Slab streaming**: the coordinator frames the shard's sub-pool —
//! byte-identical to the version-1 `IN.slab` image, row order and all —
//! as chunk frames (128 KiB each) closed by a slab-end frame whose
//! payload is the total byte count (u64 LE); the host streams the
//! archive slab back the same way after its stats frame. End-total
//! mismatches and trailing bytes are corrupt-frame failures.
//!
//! **Liveness**: while mining, the host emits a heartbeat frame at a
//! configurable cadence; the coordinator arms `SO_RCVTIMEO` /
//! `SO_SNDTIMEO` per phase (connect, send, mine, receive), so a dead
//! peer surfaces as a typed per-phase timeout, never a hang.
//!
//! **Errors**: an error frame carries `exit=<code>` (reusing the
//! version-1 exit codes: `2` slab I/O, `3` malformed request) and the
//! failure text on the following lines; the coordinator maps it to a
//! typed remote-worker failure, retries the shard with deterministic
//! backoff on a rotated host, and — when retries are exhausted — either
//! re-mines the shard in-thread from its spilled slab or surfaces a
//! typed network failure naming the shard, the attempt count, and the
//! last error.
//!
//! # Query service protocol (version 3)
//!
//! The pattern query daemon (`cfp_core::serve`: long-lived clients ↔ a
//! `cfp serve` process) speaks version 3 over the version-2 transport —
//! the identical frame layout (kind, length, payload, CRC-32; 8 MiB cap)
//! and kind numbering — with line-oriented ASCII payloads in place of
//! slab bytes. One connection carries many requests, strictly
//! request-reply; concurrent connections each get their own thread.
//!
//! **Request** (request-frame payload, ASCII): a handshake line
//! `cfp-serve 3 <verb>`, then one `key=value` field per line. Parsing is
//! strict — an unknown verb, a field the verb does not admit, a
//! duplicate key, an empty key, or a bad handshake is a typed request
//! error, never silently ignored. Verbs and their admitted fields:
//!
//! ```text
//! verb     fields                      answer
//! -------  --------------------------  --------------------------------
//! topk     k, tids, session            first k patterns of the ranking
//! lookup   items, session              exact-itemset support lookup
//! contain  items, limit, session       ranked patterns containing items
//! similar  tids                        metric ball around the tid-set
//! put      session, items, tids        intern into the session overlay
//! stats    —                           server counters
//! reload   seed, wait                  background re-mine + epoch swap
//! append   txns, wait                  absorb transactions + epoch swap
//! bye      —                           close the connection
//! ```
//!
//! **Reply**: chunk frames closed by a slab-end frame carrying the total
//! byte count (u64 LE) — the version-2 streaming shape reused for text.
//! The first payload line is `cfp-serve 3 ok <verb> epoch=<E>`; body
//! lines follow (`count=…`, `pattern items=… support=… [tids=…]`,
//! `found=0|1`, `row=… fresh=…`, `waited=1` / `scheduled=1`, and
//! `key=value` stats lines). `epoch` names the immutable generation
//! snapshot (slab + ranking + ball index) that answered: `reload`
//! re-mines on a background builder and swaps the generation
//! atomically, so two replies stamped with the same epoch are
//! byte-identical and a reader never blocks on, or observes, a build in
//! progress. A heartbeat frame may precede any reply; clients skip it.
//!
//! **Sessions**: a `session=<name>` field routes the request through
//! that tenant's private interning overlay (a fork of the shared
//! generation's slab); `put` patterns are visible only to their own
//! session and are re-interned across epoch swaps, so tenant state
//! survives a reload without leaking between tenants.
//!
//! **Errors**: an error frame carries `exit=<code>` (`3` = the request
//! was at fault, `2` = the server failed) with the failure text on the
//! following lines, exactly as in version 2. A request-level fault
//! (unknown verb, bad field, out-of-universe tid) keeps the connection
//! alive for the next request; a transport-level fault (bad CRC,
//! oversize length, truncation) is answered with an error frame and the
//! connection is closed. The `bye` verb — or a bare bye frame — closes
//! cleanly.
//!
//! # `DbDelta` interchange and append semantics
//!
//! The incremental mining path (`cfp_core::delta`, `cfp mine --append`,
//! and the serve `append` verb) moves transaction appends around as a
//! [`crate::DbDelta`]: an ordered batch of transactions carrying
//! **external** item labels. The interchange forms:
//!
//! * **File / string**: FIMI `.dat` grammar, identical to the base dataset
//!   format — one transaction per line, space-separated non-negative
//!   integer labels, blank lines skipped, any other token a parse error
//!   with a 1-based line number ([`crate::DbDelta::read_fimi`]).
//! * **Serve `append` verb (protocol 3)**: a `txns=` field holding the
//!   batch as `;`-separated transactions of `,`-separated labels (e.g.
//!   `txns=1,2,5;2,5` is the two-line file `1 2 5` / `2 5`; an empty
//!   segment is an empty transaction). The optional `wait=1` blocks until
//!   the re-mined generation is swapped in and stamps the reply with its
//!   epoch, exactly like `reload`.
//!
//! **Append semantics** ([`crate::TransactionDb::append_delta`]): the
//! batch's transactions get the next tids in batch order; labels are
//! interned through the database's existing [`crate::ItemMap`], so a label
//! already seen keeps its internal id and fresh labels extend the dense id
//! space in first-seen order; duplicate labels within one transaction
//! collapse. The grown database is therefore **equal** — item map, ids,
//! tids, everything — to one parsed from the base file and the delta file
//! concatenated, which is the ground truth the incremental engine's
//! bit-identity contract is stated against: mining incrementally after
//! `append_delta` must produce byte-for-byte the archive a from-scratch
//! re-mine of the concatenated input produces. Universe growth is
//! append-only (tids never renumber, items never change id), which is what
//! lets tid columns widen in place ([`crate::TidSet::grow_universe`]) and
//! untouched slab rows splice forward zero-extended
//! ([`PatternPool::splice_rows`]) instead of rebuilding.
//!
//! # Ownership and freezing contract
//!
//! The slab is **append-only**: a row, once pushed, is frozen — its words,
//! items, and support never change, and its id never moves. Appending may
//! reallocate the backing buffers, so borrowed row *slices* must not be held
//! across an append; row *ids* may. Exactly one owner may append at a time
//! (the engine appends only between parallel phases); concurrent readers
//! share the slab freely through `&PatternPool` (or `Arc<PatternPool>` for
//! a frozen base slab shared across shard workers).

use crate::aligned::AlignedWords;
use crate::kernels;
use crate::{Item, Itemset, TidSet};

const BITS: usize = 64;

/// A columnar, append-only slab of patterns: lane-aligned tid-set rows,
/// suffix tables, itemset spans, and cached supports. See the module docs
/// for the layout and the ownership contract.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PatternPool {
    universe: usize,
    words_per_row: usize,
    suf_stride: usize,
    /// Tid-set words, `words_per_row` per row, 32-byte-aligned rows.
    words: AlignedWords,
    /// Suffix-popcount tables, `suf_stride` entries per row.
    sufs: Vec<u32>,
    /// Itemset span starts into `item_data`; `len() + 1` entries.
    item_offsets: Vec<u32>,
    /// Concatenated itemset items (each span sorted ascending).
    item_data: Vec<Item>,
    /// Cached supports (`|D(α)|`), one per row.
    supports: Vec<u32>,
}

/// Tid-words per row for a transaction universe: the tid-set block count,
/// zero-padded to whole SIMD lanes (matches [`TidSet::blocks`]'s length).
pub fn words_per_row_for(universe: usize) -> usize {
    universe.div_ceil(BITS).div_ceil(crate::aligned::LANE_WORDS) * crate::aligned::LANE_WORDS
}

impl PatternPool {
    /// An empty slab over `universe` transactions.
    pub fn new(universe: usize) -> Self {
        let words_per_row = words_per_row_for(universe);
        Self {
            universe,
            words_per_row,
            suf_stride: words_per_row.div_ceil(kernels::SUFFIX_STRIDE) + 1,
            words: AlignedWords::default(),
            sufs: Vec::new(),
            item_offsets: vec![0],
            item_data: Vec::new(),
            supports: Vec::new(),
        }
    }

    /// [`PatternPool::new`] with row capacity reserved up front.
    pub fn with_capacity(universe: usize, rows: usize) -> Self {
        let mut pool = Self::new(universe);
        pool.reserve(rows);
        pool
    }

    /// Reserves capacity for `rows` additional rows.
    pub fn reserve(&mut self, rows: usize) {
        self.words = {
            let mut w = AlignedWords::with_capacity((self.len() + rows) * self.words_per_row);
            w.extend_from_slice(&self.words);
            w
        };
        self.sufs.reserve(rows * self.suf_stride);
        self.item_offsets.reserve(rows);
        self.supports.reserve(rows);
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.supports.len()
    }

    /// Whether the slab holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.supports.is_empty()
    }

    /// The transaction universe every row's tid-set ranges over.
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Words per tid-set row (a lane multiple; see [`words_per_row_for`]).
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Suffix-table entries per row.
    #[inline]
    pub fn suf_stride(&self) -> usize {
        self.suf_stride
    }

    /// The whole tid region — the slab the batched kernels stream. Row `r`
    /// occupies `r * words_per_row() ..`.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The whole suffix-table column (same row indexing as [`Self::words`]).
    #[inline]
    pub fn sufs(&self) -> &[u32] {
        &self.sufs
    }

    /// Cached supports, indexed by row — the gather key the batched Jaccard
    /// kernels take alongside [`Self::words`].
    #[inline]
    pub fn supports(&self) -> &[u32] {
        &self.supports
    }

    /// Itemset span starts into [`Self::item_data`]; `len() + 1` entries
    /// (row `r` spans `item_offsets[r]..item_offsets[r + 1]`).
    #[inline]
    pub fn item_offsets(&self) -> &[u32] {
        &self.item_offsets
    }

    /// The concatenated item column (each row's span sorted ascending).
    #[inline]
    pub fn item_data(&self) -> &[Item] {
        &self.item_data
    }

    /// Assembles a slab directly from validated whole columns — the
    /// zero-copy load path ([`crate::slab_io`]) hands buffers it filled from
    /// disk straight to the pool without re-pushing rows.
    ///
    /// The caller must have verified the structural invariants (widths
    /// derived from `universe`, offsets monotonic and spanning `item_data`,
    /// column lengths consistent with the row count); this constructor only
    /// re-derives the geometry.
    pub(crate) fn from_raw_columns(
        universe: usize,
        words: AlignedWords,
        sufs: Vec<u32>,
        item_offsets: Vec<u32>,
        item_data: Vec<Item>,
        supports: Vec<u32>,
    ) -> Self {
        let words_per_row = words_per_row_for(universe);
        Self {
            universe,
            words_per_row,
            suf_stride: words_per_row.div_ceil(kernels::SUFFIX_STRIDE) + 1,
            words,
            sufs,
            item_offsets,
            item_data,
            supports,
        }
    }

    /// Tid-set words of row `row`.
    #[inline]
    pub fn tid_words(&self, row: u32) -> &[u64] {
        let w = self.words_per_row;
        &self.words[row as usize * w..(row as usize + 1) * w]
    }

    /// Suffix table of row `row`.
    #[inline]
    pub fn row_sufs(&self, row: u32) -> &[u32] {
        let s = self.suf_stride;
        &self.sufs[row as usize * s..(row as usize + 1) * s]
    }

    /// Itemset items of row `row`, sorted ascending.
    #[inline]
    pub fn items(&self, row: u32) -> &[Item] {
        let (lo, hi) = (
            self.item_offsets[row as usize] as usize,
            self.item_offsets[row as usize + 1] as usize,
        );
        &self.item_data[lo..hi]
    }

    /// Cached support `|D(α)|` of row `row`.
    #[inline]
    pub fn support(&self, row: u32) -> usize {
        self.supports[row as usize] as usize
    }

    /// Materializes row `row`'s itemset (owned).
    pub fn itemset(&self, row: u32) -> Itemset {
        Itemset::from_sorted(self.items(row).to_vec())
    }

    /// Materializes row `row`'s support set (owned).
    pub fn tidset(&self, row: u32) -> TidSet {
        TidSet::from_words(self.universe, self.tid_words(row), self.support(row))
    }

    /// Appends a row from raw parts: `items` sorted ascending, `blocks`
    /// exactly [`Self::words_per_row`] tid words whose popcount is `count`.
    /// Returns the new row id.
    pub fn push(&mut self, items: &[Item], blocks: &[u64], count: usize) -> u32 {
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "row items must be strictly ascending"
        );
        debug_assert_eq!(blocks.len(), self.words_per_row, "row width mismatch");
        debug_assert_eq!(
            blocks
                .iter()
                .map(|b| b.count_ones() as usize)
                .sum::<usize>(),
            count,
            "cached support out of sync with blocks"
        );
        let row = self.len() as u32;
        self.words.extend_from_slice(blocks);
        kernels::suffix_cards_into(blocks, &mut self.sufs);
        self.item_data.extend_from_slice(items);
        self.item_offsets.push(self.item_data.len() as u32);
        self.supports.push(count as u32);
        row
    }

    /// Appends a row from an itemset slice and a counted tid-set.
    pub fn push_tidset(&mut self, items: &[Item], tids: &TidSet) -> u32 {
        debug_assert_eq!(tids.universe(), self.universe, "mixed universes");
        self.push(items, tids.blocks(), tids.count())
    }

    /// Splices every row of `other` onto the end of `self`, preserving row
    /// order — the deterministic merge step for per-worker slab segments.
    ///
    /// # Panics
    /// Panics when the universes differ.
    pub fn append_pool(&mut self, other: &PatternPool) {
        assert_eq!(self.universe, other.universe, "mixed universes");
        self.words.extend_from_slice(&other.words);
        self.sufs.extend_from_slice(&other.sufs);
        let base = self.item_data.len() as u32;
        self.item_data.extend_from_slice(&other.item_data);
        self.item_offsets
            .extend(other.item_offsets[1..].iter().map(|&o| base + o));
        self.supports.extend_from_slice(&other.supports);
    }

    /// Splices a contiguous row range of `src` onto the end of `self`,
    /// preserving row order — the incremental miner's bulk-copy step for
    /// subtrees a delta did not touch.
    ///
    /// Unlike [`PatternPool::append_pool`] the source may range over a
    /// *smaller* (earlier-generation) transaction universe: appended
    /// transactions only ever add high tids, so an untouched row's tid-set
    /// is the same bit pattern zero-extended. When both pools share a padded
    /// row width (universe growth within the current lane padding — the
    /// common small-append case) the tid words and suffix tables are copied
    /// column-wise in bulk; when `self` is wider each row is re-laid-out
    /// through a zero-padded scratch row and its suffix table recomputed.
    ///
    /// # Panics
    /// Panics when `self`'s universe (or padded row width) is smaller than
    /// `src`'s — splicing never drops tid bits.
    pub fn splice_rows(&mut self, src: &PatternPool, rows: std::ops::Range<usize>) {
        assert!(
            self.universe >= src.universe && self.words_per_row >= src.words_per_row,
            "splice target must cover the source universe ({} < {})",
            self.universe,
            src.universe
        );
        if self.words_per_row == src.words_per_row {
            // Same padded width: identical geometry (suf_stride is derived
            // from it), so every column extends by a contiguous slice.
            let w = self.words_per_row;
            self.words
                .extend_from_slice(&src.words[rows.start * w..rows.end * w]);
            let s = self.suf_stride;
            self.sufs
                .extend_from_slice(&src.sufs[rows.start * s..rows.end * s]);
            let base = self.item_data.len() as u32;
            let start_off = src.item_offsets[rows.start];
            let (ilo, ihi) = (start_off as usize, src.item_offsets[rows.end] as usize);
            self.item_data.extend_from_slice(&src.item_data[ilo..ihi]);
            self.item_offsets.extend(
                src.item_offsets[rows.start + 1..=rows.end]
                    .iter()
                    .map(|&o| base + (o - start_off)),
            );
            self.supports.extend_from_slice(&src.supports[rows.clone()]);
        } else {
            let mut scratch = vec![0u64; self.words_per_row];
            for row in rows {
                let row = row as u32;
                let tid = src.tid_words(row);
                scratch[..tid.len()].copy_from_slice(tid);
                self.push(src.items(row), &scratch, src.support(row));
            }
        }
    }

    /// Row ids in the stratified `(support asc, itemset)` rank — the order
    /// the sharded engine consumes.
    pub fn stratified_order(&self) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            self.supports[a as usize]
                .cmp(&self.supports[b as usize])
                .then_with(|| self.items(a).cmp(self.items(b)))
        });
        order
    }

    /// A new slab holding `order`'s rows in `order`'s sequence.
    pub fn permuted(&self, order: &[u32]) -> PatternPool {
        let mut out = PatternPool::with_capacity(self.universe, order.len());
        for &row in order {
            out.push(self.items(row), self.tid_words(row), self.support(row));
        }
        out
    }

    /// Bytes held by the tid region (the dominant column).
    pub fn tid_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    /// Approximate resident bytes across all columns.
    pub fn resident_bytes(&self) -> usize {
        self.tid_bytes()
            + self.sufs.len() * 4
            + self.item_data.len() * 4
            + self.item_offsets.len() * 4
            + self.supports.len() * 4
    }
}

/// Whether sorted slice `sub` is a subset of sorted slice `sup`. The slice
/// form of [`Itemset::is_subset_of`], with the same merge/binary-search
/// dispatch (fusion constantly asks whether a 2–3 item pool pattern sits
/// inside a fused pattern of hundreds of items).
pub fn sorted_subset(sub: &[Item], sup: &[Item]) -> bool {
    if sub.len() > sup.len() {
        return false;
    }
    if sub.len() * 8 < sup.len() {
        return sub.iter().all(|x| sup.binary_search(x).is_ok());
    }
    let mut it = sup.iter();
    'outer: for &x in sub {
        for &y in it.by_ref() {
            match y.cmp(&x) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// FxHash-style fold over a sorted item slice — the row-interning hash.
/// Collisions are handled exactly by the callers (equal-hash candidates are
/// verified by item equality), so only speed depends on hash quality.
fn items_hash(items: &[Item]) -> u64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let mut h = 0u64;
    for &item in items {
        h = (h.rotate_left(5) ^ item as u64).wrapping_mul(SEED);
    }
    h ^ (h >> 32)
}

/// Growable open-addressed itemset→row table with linear probing: the slab's
/// interner. Slots hold bare `u32` row ids; the table never owns item data —
/// every operation takes an `at` resolver mapping a stored row id back to
/// its sorted item slice. Grows by doubling at 50% load, so unlike the
/// fixed-capacity delta table it can track an append-only slab across a
/// whole run.
#[derive(Debug, Clone, Default)]
pub struct RowTable {
    mask: usize,
    len: usize,
    slots: Vec<u32>,
}

impl RowTable {
    const EMPTY: u32 = u32::MAX;

    /// A table sized for `n` insertions at ≤ 50% load.
    pub fn with_capacity(n: usize) -> Self {
        let mask = (n * 2).next_power_of_two().max(4) - 1;
        Self {
            mask,
            len: 0,
            slots: vec![Self::EMPTY; mask + 1],
        }
    }

    /// A table pre-populated with every row of `pool` (first occurrence of
    /// each itemset wins, matching pool dedup semantics).
    pub fn build(pool: &PatternPool) -> Self {
        let mut table = Self::with_capacity(pool.len());
        for row in 0..pool.len() as u32 {
            table.insert_or_get(pool.items(row), row, |r| pool.items(r));
        }
        table
    }

    /// Entries stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks `items` up among the inserted entries; when absent, inserts
    /// `row` and returns `None`, otherwise returns the existing row id.
    pub fn insert_or_get<'a>(
        &mut self,
        items: &[Item],
        row: u32,
        at: impl Fn(u32) -> &'a [Item],
    ) -> Option<u32> {
        if (self.len + 1) * 2 > self.slots.len() {
            self.grow(&at);
        }
        let mut s = items_hash(items) as usize & self.mask;
        loop {
            let si = self.slots[s];
            if si == Self::EMPTY {
                self.slots[s] = row;
                self.len += 1;
                return None;
            }
            if at(si) == items {
                return Some(si);
            }
            s = (s + 1) & self.mask;
        }
    }

    /// Looks `items` up without inserting.
    pub fn get<'a>(&self, items: &[Item], at: impl Fn(u32) -> &'a [Item]) -> Option<u32> {
        // A default-constructed table has no slots until the first insert
        // grows it — nothing can be stored, so nothing can match.
        if self.slots.is_empty() {
            return None;
        }
        let mut s = items_hash(items) as usize & self.mask;
        loop {
            let si = self.slots[s];
            if si == Self::EMPTY {
                return None;
            }
            if at(si) == items {
                return Some(si);
            }
            s = (s + 1) & self.mask;
        }
    }

    fn grow<'a>(&mut self, at: &impl Fn(u32) -> &'a [Item]) {
        let mask = ((self.slots.len()) * 2).max(8) - 1;
        let mut slots = vec![Self::EMPTY; mask + 1];
        for &si in self.slots.iter().filter(|&&si| si != Self::EMPTY) {
            let mut s = items_hash(at(si)) as usize & mask;
            while slots[s] != Self::EMPTY {
                s = (s + 1) & mask;
            }
            slots[s] = si;
        }
        self.mask = mask;
        self.slots = slots;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_with(universe: usize, rows: &[(&[Item], &[usize])]) -> PatternPool {
        let mut pool = PatternPool::new(universe);
        for (items, tids) in rows {
            let t = TidSet::from_tids(universe, tids.iter().copied());
            pool.push_tidset(items, &t);
        }
        pool
    }

    #[test]
    fn rows_round_trip() {
        let pool = pool_with(
            130,
            &[(&[1, 3], &[0, 64, 129]), (&[2], &[5]), (&[0, 1, 2], &[])],
        );
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.items(0), &[1, 3]);
        assert_eq!(pool.support(0), 3);
        assert_eq!(pool.tidset(0).to_vec(), vec![0, 64, 129]);
        assert_eq!(pool.itemset(2), Itemset::from_items(&[0, 1, 2]));
        assert_eq!(pool.support(2), 0);
        // Row width honors the lane-padding contract.
        assert_eq!(pool.words_per_row(), words_per_row_for(130));
        assert_eq!(pool.words_per_row() % crate::aligned::LANE_WORDS, 0);
        assert_eq!(pool.tid_words(1).len(), pool.words_per_row());
        // Suffix tables match the kernel helper.
        assert_eq!(
            pool.row_sufs(0),
            &kernels::suffix_cards(pool.tid_words(0))[..]
        );
    }

    #[test]
    fn words_match_tidset_blocks() {
        for universe in [0usize, 1, 63, 64, 65, 256, 1000] {
            assert_eq!(
                words_per_row_for(universe),
                TidSet::empty(universe).blocks().len(),
                "universe {universe}"
            );
        }
    }

    #[test]
    fn append_pool_splices_in_order() {
        let a = pool_with(64, &[(&[1], &[0, 1]), (&[2], &[2])]);
        let b = pool_with(64, &[(&[3, 4], &[1, 3]), (&[5], &[])]);
        let mut spliced = a.clone();
        spliced.append_pool(&b);
        assert_eq!(spliced.len(), 4);
        for (row, want) in [(0, &a), (1, &a)] {
            assert_eq!(spliced.items(row), want.items(row));
            assert_eq!(spliced.tid_words(row), want.tid_words(row));
        }
        assert_eq!(spliced.items(2), b.items(0));
        assert_eq!(spliced.tid_words(3), b.tid_words(1));
        assert_eq!(spliced.row_sufs(2), b.row_sufs(0));
        assert_eq!(spliced.support(2), 2);
    }

    #[test]
    fn splice_rows_same_width_and_wider() {
        let src = pool_with(
            100,
            &[
                (&[1], &[0, 64, 99]),
                (&[2, 3], &[5]),
                (&[4], &[]),
                (&[5, 6, 7], &[1, 2]),
            ],
        );
        // Same padded width: universes 100 and 200 both round to 4 words.
        let mut same = PatternPool::new(200);
        assert_eq!(same.words_per_row(), src.words_per_row());
        same.splice_rows(&src, 1..3);
        same.splice_rows(&src, 3..4);
        // Wider target: 100 → 300 crosses the 256-tid lane boundary.
        let mut wide = PatternPool::new(300);
        assert!(wide.words_per_row() > src.words_per_row());
        wide.splice_rows(&src, 1..3);
        wide.splice_rows(&src, 3..4);
        // Both must equal pushing the same rows by hand.
        for (got, universe) in [(&same, 200), (&wide, 300)] {
            let mut want = PatternPool::new(universe);
            for row in 1..4u32 {
                let mut t = TidSet::from_words(100, src.tid_words(row), src.support(row));
                t.grow_universe(universe);
                want.push_tidset(src.items(row), &t);
            }
            assert_eq!(got, &want, "universe {universe}");
            // Suffix tables stay consistent with the kernel helper.
            for row in 0..got.len() as u32 {
                assert_eq!(
                    got.row_sufs(row),
                    &kernels::suffix_cards(got.tid_words(row))[..]
                );
            }
        }
        // Empty and full ranges degrade gracefully.
        let mut all = PatternPool::new(100);
        all.splice_rows(&src, 0..0);
        assert!(all.is_empty());
        all.splice_rows(&src, 0..src.len());
        assert_eq!(all, src);
    }

    #[test]
    fn stratified_order_and_permuted() {
        let pool = pool_with(
            64,
            &[
                (&[5], &[0, 1, 2]),
                (&[1], &[0]),
                (&[2], &[0]),
                (&[0, 9], &[1, 2]),
            ],
        );
        let order = pool.stratified_order();
        // (support, itemset): (1,(1)) < (1,(2)) < (2,(0 9)) < (3,(5)).
        assert_eq!(order, vec![1, 2, 3, 0]);
        let sorted = pool.permuted(&order);
        assert_eq!(sorted.items(0), &[1]);
        assert_eq!(sorted.items(3), &[5]);
        assert_eq!(sorted.tidset(2).to_vec(), vec![1, 2]);
    }

    #[test]
    fn sorted_subset_matches_itemset() {
        let cases: &[(&[Item], &[Item])] = &[
            (&[], &[1, 2]),
            (&[1], &[1, 2]),
            (&[1, 2], &[1, 2]),
            (&[1, 3], &[1, 2]),
            (
                &[2],
                &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17],
            ),
            (
                &[0],
                &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17],
            ),
        ];
        for &(sub, sup) in cases {
            assert_eq!(
                sorted_subset(sub, sup),
                Itemset::from_items(sub).is_subset_of(&Itemset::from_items(sup)),
                "{sub:?} ⊆ {sup:?}"
            );
        }
    }

    #[test]
    fn row_table_interns_and_grows() {
        let mut pool = PatternPool::new(32);
        let mut table = RowTable::with_capacity(2);
        // Push 100 distinct rows through the interner; duplicates resolve.
        for i in 0..100u32 {
            let items = [i, i + 200];
            let t = TidSet::from_tids(32, [i as usize % 32]);
            let row = pool.len() as u32;
            let existing = table.insert_or_get(&items, row, |r| pool.items(r));
            assert_eq!(existing, None, "i={i}");
            pool.push_tidset(&items, &t);
        }
        assert_eq!(table.len(), 100);
        for i in 0..100u32 {
            let items = [i, i + 200];
            assert_eq!(table.get(&items, |r| pool.items(r)), Some(i));
            assert_eq!(table.insert_or_get(&items, 999, |r| pool.items(r)), Some(i));
        }
        assert_eq!(table.get(&[7], |r| pool.items(r)), None);
    }

    #[test]
    fn default_row_table_misses_without_panicking() {
        // Regression: a default-constructed table has no slots until the
        // first insert grows it; `get` must miss, not index into nothing.
        let pool = pool_with(32, &[(&[1], &[0])]);
        let table = RowTable::default();
        assert_eq!(table.get(&[1], |r| pool.items(r)), None);
        assert!(table.is_empty());
        let mut table = table;
        assert_eq!(table.insert_or_get(&[1], 0, |r| pool.items(r)), None);
        assert_eq!(table.get(&[1], |r| pool.items(r)), Some(0));
    }

    #[test]
    fn row_table_build_covers_pool() {
        let pool = pool_with(64, &[(&[1], &[0]), (&[2, 3], &[1]), (&[4], &[2])]);
        let table = RowTable::build(&pool);
        assert_eq!(table.len(), 3);
        assert_eq!(table.get(&[2, 3], |r| pool.items(r)), Some(1));
    }

    #[test]
    fn empty_universe_slab() {
        let mut pool = PatternPool::new(0);
        assert_eq!(pool.words_per_row(), 0);
        let t = TidSet::empty(0);
        let r = pool.push_tidset(&[3], &t);
        assert_eq!(pool.support(r), 0);
        assert_eq!(pool.tid_words(r), &[] as &[u64]);
        assert_eq!(pool.row_sufs(r).len(), pool.suf_stride());
    }
}
