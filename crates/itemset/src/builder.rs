//! Incremental database construction with item remapping.

use crate::database::TransactionDb;
use crate::item::{Item, ItemMap};
use crate::itemset::Itemset;

/// Builds a [`TransactionDb`] from transactions over arbitrary `u32` labels.
///
/// Labels are interned to dense internal ids in first-seen order. Call
/// [`DbBuilder::build`] to finish, or
/// [`DbBuilder::build_frequency_ordered`] to additionally renumber items in
/// descending frequency order — the ordering FP-growth and the closed/maximal
/// miners prefer, since it shrinks the FP-tree and tightens pruning.
#[derive(Debug, Default, Clone)]
pub struct DbBuilder {
    map: ItemMap,
    transactions: Vec<Itemset>,
}

impl DbBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one transaction given by external item labels (duplicates are
    /// collapsed). Returns the transaction id it received.
    pub fn add_transaction(&mut self, labels: &[u32]) -> usize {
        let items: Vec<Item> = labels.iter().map(|&l| self.map.intern(l)).collect();
        let tid = self.transactions.len();
        self.transactions.push(Itemset::from_items(&items));
        tid
    }

    /// Number of transactions added so far.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Whether no transactions were added.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Finishes with first-seen item numbering.
    pub fn build(self) -> TransactionDb {
        let n = self.map.len() as u32;
        TransactionDb::from_parts(self.transactions, n, self.map)
    }

    /// Finishes, renumbering items so that item `0` is the most frequent.
    ///
    /// Ties are broken by the old internal id to keep the result
    /// deterministic.
    pub fn build_frequency_ordered(self) -> TransactionDb {
        let n = self.map.len();
        let mut counts = vec![0usize; n];
        for t in &self.transactions {
            for item in t.iter() {
                counts[item as usize] += 1;
            }
        }
        // order[k] = old id that should become new id k.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| counts[b].cmp(&counts[a]).then(a.cmp(&b)));
        let mut renumber = vec![0 as Item; n];
        for (new_id, &old_id) in order.iter().enumerate() {
            renumber[old_id] = new_id as Item;
        }

        let transactions: Vec<Itemset> = self
            .transactions
            .iter()
            .map(|t| t.iter().map(|i| renumber[i as usize]).collect())
            .collect();

        let mut map = ItemMap::new();
        for &old_id in &order {
            map.intern(self.map.external(old_id as Item));
        }
        TransactionDb::from_parts(transactions, n as u32, map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_interns_in_first_seen_order() {
        let mut b = DbBuilder::new();
        b.add_transaction(&[100, 7]);
        b.add_transaction(&[7, 3]);
        let db = b.build();
        assert_eq!(db.num_items(), 3);
        assert_eq!(db.item_map().internal(100), Some(0));
        assert_eq!(db.item_map().internal(7), Some(1));
        assert_eq!(db.item_map().internal(3), Some(2));
    }

    #[test]
    fn frequency_ordering_puts_hottest_item_first() {
        let mut b = DbBuilder::new();
        b.add_transaction(&[1, 2]);
        b.add_transaction(&[2, 3]);
        b.add_transaction(&[2]);
        b.add_transaction(&[3]);
        let db = b.build_frequency_ordered();
        // Frequencies: 2 → 3 times, 3 → 2 times, 1 → once.
        assert_eq!(db.item_map().internal(2), Some(0));
        assert_eq!(db.item_map().internal(3), Some(1));
        assert_eq!(db.item_map().internal(1), Some(2));
        // Supports must be preserved under renumbering.
        assert_eq!(db.support(&Itemset::singleton(0)), 3);
        assert_eq!(db.support(&Itemset::singleton(1)), 2);
        assert_eq!(db.support(&Itemset::singleton(2)), 1);
    }

    #[test]
    fn frequency_ordering_is_deterministic_on_ties() {
        let mut b = DbBuilder::new();
        b.add_transaction(&[9, 4]);
        b.add_transaction(&[4, 9]);
        let db = b.build_frequency_ordered();
        // Both items occur twice; the tie breaks by first-seen internal id.
        assert_eq!(db.item_map().internal(9), Some(0));
        assert_eq!(db.item_map().internal(4), Some(1));
    }

    #[test]
    fn tids_are_insertion_ordered() {
        let mut b = DbBuilder::new();
        assert_eq!(b.add_transaction(&[1]), 0);
        assert_eq!(b.add_transaction(&[2]), 1);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }
}
