//! Sorted, deduplicated itemsets.

use crate::item::Item;
use std::fmt;

/// An itemset: a sorted, duplicate-free set of items.
///
/// The sorted-vector representation makes subset tests, unions, and
/// intersections linear merges, keeps memory contiguous, and gives a total
/// order (lexicographic) for free — which the miners use for prefix-based
/// enumeration.
#[derive(PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Itemset {
    items: Vec<Item>,
}

impl Clone for Itemset {
    fn clone(&self) -> Self {
        Self {
            items: self.items.clone(),
        }
    }

    /// Reuses the existing allocation (scratch-buffer friendly).
    fn clone_from(&mut self, source: &Self) {
        self.items.clone_from(&source.items);
    }
}

impl Itemset {
    /// The empty itemset.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds an itemset from a slice, sorting and deduplicating.
    pub fn from_items(items: &[Item]) -> Self {
        let mut v = items.to_vec();
        v.sort_unstable();
        v.dedup();
        Self { items: v }
    }

    /// Builds an itemset from a vector **already sorted and deduplicated**.
    ///
    /// # Panics
    /// Panics (debug) if the invariant does not hold.
    pub fn from_sorted(items: Vec<Item>) -> Self {
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "from_sorted requires strictly ascending items"
        );
        Self { items }
    }

    /// A singleton itemset.
    pub fn singleton(item: Item) -> Self {
        Self { items: vec![item] }
    }

    /// Cardinality |α| (Definition: number of items).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the itemset is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The items, sorted ascending.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Whether `item` is a member (binary search).
    pub fn contains(&self, item: Item) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// Whether `self ⊆ other`.
    ///
    /// Dispatches between a linear merge and per-item binary search: fusion
    /// constantly asks whether a 2–3 item pool pattern is inside a fused
    /// pattern of hundreds of items, where the merge would walk the large
    /// side end to end.
    pub fn is_subset_of(&self, other: &Itemset) -> bool {
        if self.items.len() > other.items.len() {
            return false;
        }
        // Binary search wins when |self|·log|other| ≪ |self| + |other|.
        if self.items.len() * 8 < other.items.len() {
            return self
                .items
                .iter()
                .all(|x| other.items.binary_search(x).is_ok());
        }
        let mut it = other.items.iter();
        'outer: for &x in &self.items {
            for &y in it.by_ref() {
                match y.cmp(&x) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Whether `self ⊂ other` (proper subset).
    pub fn is_proper_subset_of(&self, other: &Itemset) -> bool {
        self.items.len() < other.items.len() && self.is_subset_of(other)
    }

    /// Union `self ∪ other` as a new itemset.
    pub fn union(&self, other: &Itemset) -> Itemset {
        let mut out = Vec::with_capacity(self.items.len() + other.items.len());
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() && j < other.items.len() {
            match self.items[i].cmp(&other.items[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.items[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.items[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.items[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.items[i..]);
        out.extend_from_slice(&other.items[j..]);
        Itemset { items: out }
    }

    /// Extends `self` in place with the items of `other` (union assign).
    pub fn union_with(&mut self, other: &Itemset) {
        // The merge result is built fresh; reuse would complicate the common
        // case where `other` adds only a few items.
        self.union_with_sorted(&other.items);
    }

    /// [`Itemset::union_with`] against a sorted, deduplicated item slice —
    /// the form pool-slab rows hand out ([`crate::store::PatternPool`]).
    pub fn union_with_sorted(&mut self, other: &[Item]) {
        debug_assert!(other.windows(2).all(|w| w[0] < w[1]));
        let mut out = Vec::with_capacity(self.items.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() && j < other.len() {
            match self.items[i].cmp(&other[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.items[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.items[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.items[i..]);
        out.extend_from_slice(&other[j..]);
        self.items = out;
    }

    /// Intersection `self ∩ other` as a new itemset.
    pub fn intersection(&self, other: &Itemset) -> Itemset {
        let mut out = Vec::with_capacity(self.items.len().min(other.items.len()));
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() && j < other.items.len() {
            match self.items[i].cmp(&other.items[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.items[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        Itemset { items: out }
    }

    /// Set difference `self \ other` as a new itemset.
    pub fn difference(&self, other: &Itemset) -> Itemset {
        let mut out = Vec::with_capacity(self.items.len());
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() {
            if j >= other.items.len() || self.items[i] < other.items[j] {
                out.push(self.items[i]);
                i += 1;
            } else if self.items[i] == other.items[j] {
                i += 1;
                j += 1;
            } else {
                j += 1;
            }
        }
        Itemset { items: out }
    }

    /// `|self ∩ other|` without allocating.
    pub fn intersection_count(&self, other: &Itemset) -> usize {
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < self.items.len() && j < other.items.len() {
            match self.items[i].cmp(&other.items[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// `|self ∪ other|` without allocating.
    pub fn union_count(&self, other: &Itemset) -> usize {
        self.items.len() + other.items.len() - self.intersection_count(other)
    }

    /// Returns a new itemset with `item` inserted.
    pub fn with_item(&self, item: Item) -> Itemset {
        match self.items.binary_search(&item) {
            Ok(_) => self.clone(),
            Err(pos) => {
                let mut v = Vec::with_capacity(self.items.len() + 1);
                v.extend_from_slice(&self.items[..pos]);
                v.push(item);
                v.extend_from_slice(&self.items[pos..]);
                Itemset { items: v }
            }
        }
    }

    /// Returns a new itemset with `item` removed (if present).
    pub fn without_item(&self, item: Item) -> Itemset {
        match self.items.binary_search(&item) {
            Err(_) => self.clone(),
            Ok(pos) => {
                let mut v = self.items.clone();
                v.remove(pos);
                Itemset { items: v }
            }
        }
    }

    /// Iterates over the items in ascending order.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, Item>> {
        self.items.iter().copied()
    }
}

impl FromIterator<Item> for Itemset {
    fn from_iter<I: IntoIterator<Item = Item>>(iter: I) -> Self {
        let v: Vec<Item> = iter.into_iter().collect();
        Itemset::from_items(&v)
    }
}

impl From<Vec<Item>> for Itemset {
    fn from(v: Vec<Item>) -> Self {
        Itemset::from_items(&v)
    }
}

impl fmt::Debug for Itemset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Itemset {
    /// Renders as `(o1 o2 ... ok)`, matching the paper's notation.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn from_items_sorts_and_dedups() {
        let s = Itemset::from_items(&[3, 1, 3, 2, 1]);
        assert_eq!(s.items(), &[1, 2, 3]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn subset_relations() {
        let ab = Itemset::from_items(&[0, 1]);
        let abc = Itemset::from_items(&[0, 1, 2]);
        let bd = Itemset::from_items(&[1, 3]);
        assert!(ab.is_subset_of(&abc));
        assert!(ab.is_proper_subset_of(&abc));
        assert!(!abc.is_subset_of(&ab));
        assert!(!bd.is_subset_of(&abc));
        assert!(abc.is_subset_of(&abc));
        assert!(!abc.is_proper_subset_of(&abc));
        assert!(Itemset::empty().is_subset_of(&ab));
    }

    #[test]
    fn union_intersection_difference() {
        let a = Itemset::from_items(&[1, 2, 5]);
        let b = Itemset::from_items(&[2, 3]);
        assert_eq!(a.union(&b).items(), &[1, 2, 3, 5]);
        assert_eq!(a.intersection(&b).items(), &[2]);
        assert_eq!(a.difference(&b).items(), &[1, 5]);
        assert_eq!(a.union_count(&b), 4);
        assert_eq!(a.intersection_count(&b), 1);
    }

    #[test]
    fn with_and_without_item() {
        let a = Itemset::from_items(&[1, 5]);
        assert_eq!(a.with_item(3).items(), &[1, 3, 5]);
        assert_eq!(a.with_item(5).items(), &[1, 5]);
        assert_eq!(a.without_item(1).items(), &[5]);
        assert_eq!(a.without_item(9).items(), &[1, 5]);
    }

    #[test]
    fn display_matches_paper_notation() {
        let s = Itemset::from_items(&[41, 42, 79]);
        assert_eq!(s.to_string(), "(41 42 79)");
        assert_eq!(Itemset::empty().to_string(), "()");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Itemset::from_items(&[1, 2]);
        let b = Itemset::from_items(&[1, 3]);
        let c = Itemset::from_items(&[1, 2, 3]);
        assert!(a < b);
        assert!(a < c); // prefix is smaller
        assert!(c < b);
    }

    fn arb_items() -> impl Strategy<Value = Vec<Item>> {
        proptest::collection::vec(0u32..40, 0..24)
    }

    proptest! {
        /// All itemset operations agree with a `BTreeSet` model.
        #[test]
        fn ops_match_btreeset_model(xs in arb_items(), ys in arb_items()) {
            let ma: BTreeSet<Item> = xs.iter().copied().collect();
            let mb: BTreeSet<Item> = ys.iter().copied().collect();
            let a = Itemset::from_items(&xs);
            let b = Itemset::from_items(&ys);

            prop_assert_eq!(a.len(), ma.len());
            prop_assert_eq!(
                a.union(&b).items().to_vec(),
                ma.union(&mb).copied().collect::<Vec<_>>()
            );
            prop_assert_eq!(
                a.intersection(&b).items().to_vec(),
                ma.intersection(&mb).copied().collect::<Vec<_>>()
            );
            prop_assert_eq!(
                a.difference(&b).items().to_vec(),
                ma.difference(&mb).copied().collect::<Vec<_>>()
            );
            prop_assert_eq!(a.is_subset_of(&b), ma.is_subset(&mb));
            prop_assert_eq!(a.union_count(&b), ma.union(&mb).count());
            prop_assert_eq!(a.intersection_count(&b), ma.intersection(&mb).count());
        }

        /// `with_item`/`without_item` round-trip.
        #[test]
        fn with_without_round_trip(xs in arb_items(), item in 0u32..40) {
            let a = Itemset::from_items(&xs);
            let added = a.with_item(item);
            prop_assert!(added.contains(item));
            let removed = added.without_item(item);
            prop_assert!(!removed.contains(item));
            prop_assert_eq!(removed, a.without_item(item));
        }
    }
}
