//! x86-64 SIMD backends: SSE2/POPCNT and AVX2.
//!
//! Both backends compute exactly the same integer popcounts as
//! [`super::scalar`] — only *how* the bits are counted differs — so every
//! derived float (and therefore fusion output) is bit-identical across
//! backends. Abort granularity in the bounded kernels is coarser (per
//! 4-or-8-word group instead of per word), which never changes a result:
//! the abort bound is monotone, so the first violation is final wherever it
//! is checked (see the scalar kernels' contract).
//!
//! * **SSE2/POPCNT** re-enters the scalar word loops inside a
//!   `#[target_feature(enable = "popcnt")]` context: `count_ones()` then
//!   compiles to the hardware `POPCNT` instruction (1/word) instead of the
//!   ~12-op SWAR sequence baseline x86-64 is stuck with.
//! * **AVX2** ANDs 256-bit lanes and popcounts them with the vectorized
//!   pshufb-lookup algorithm (Muła): a 4-bit-nibble table lookup per byte,
//!   horizontally summed by `vpsadbw`. Four words per step, no per-word
//!   dependency chain.
//!
//! All loads are *unaligned* (`loadu`); the 32-byte alignment of
//! [`crate::aligned::AlignedWords`] slabs is a performance property, not a
//! safety requirement, so these kernels accept arbitrary word slices
//! (including ragged tails, handled scalar).
//!
//! # Safety
//! This is the crate's only module with `unsafe` code (the crate is
//! otherwise `#![deny(unsafe_code)]`). Two kinds appear, each with a local
//! justification: calls into `#[target_feature]` functions from the safe
//! wrappers (sound because [`super::Backend`] only selects a backend after
//! `is_x86_feature_detected!` confirms it, and the wrappers `debug_assert`
//! the same), and raw-pointer vector loads (bounds guaranteed by the
//! surrounding loop conditions).

use super::{jaccard_from_counts, jaccard_within_via_inv, radius_threshold_factor};
use core::arch::x86_64::*;
use core::ops::Range;

// ---------------------------------------------------------------------------
// Safe wrappers: the `Backend` dispatch calls these.
// ---------------------------------------------------------------------------

// Each wrapper is sound for the same reason: `Backend` selects the SSE2 /
// AVX2 paths only after `is_x86_feature_detected!` confirmed the features
// (debug-asserted here), so the `#[target_feature]` callee's requirements
// hold.

#[inline]
pub(super) fn sse2_intersection_count(a: &[u64], b: &[u64]) -> usize {
    debug_assert!(std::arch::is_x86_feature_detected!("popcnt"));
    // SAFETY: see the wrapper soundness note above.
    unsafe { popcnt_intersection_count(a, b) }
}

#[inline]
pub(super) fn sse2_intersection_count_at_least(
    a: &[u64],
    card_a: usize,
    b: &[u64],
    card_b: usize,
    threshold: usize,
) -> Option<usize> {
    debug_assert!(std::arch::is_x86_feature_detected!("popcnt"));
    // SAFETY: see the wrapper soundness note above.
    unsafe { popcnt_intersection_count_at_least(a, card_a, b, card_b, threshold) }
}

#[inline]
pub(super) fn sse2_intersection_count_at_least_suffix(
    a: &[u64],
    suffix_a: &[u32],
    b: &[u64],
    suffix_b: &[u32],
    threshold: usize,
) -> Option<usize> {
    debug_assert!(std::arch::is_x86_feature_detected!("popcnt"));
    // SAFETY: see the wrapper soundness note above.
    unsafe { popcnt_intersection_count_at_least_suffix(a, suffix_a, b, suffix_b, threshold) }
}

#[inline]
pub(super) fn avx2_intersection_count(a: &[u64], b: &[u64]) -> usize {
    debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
    // SAFETY: see the wrapper soundness note above.
    unsafe { avx2_intersection_count_impl(a, b) }
}

#[inline]
pub(super) fn avx2_intersection_count_at_least(
    a: &[u64],
    card_a: usize,
    b: &[u64],
    card_b: usize,
    threshold: usize,
) -> Option<usize> {
    debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
    // SAFETY: see the wrapper soundness note above.
    unsafe { avx2_intersection_count_at_least_impl(a, card_a, b, card_b, threshold) }
}

// ---------------------------------------------------------------------------
// SSE2/POPCNT: the scalar loops, recompiled with hardware popcount.
// ---------------------------------------------------------------------------
//
// The scalar bodies are `#[inline]`; inlining them into a
// `popcnt`-enabled caller makes LLVM select the POPCNT instruction for
// every `count_ones()`.

#[target_feature(enable = "popcnt")]
fn popcnt_intersection_count(a: &[u64], b: &[u64]) -> usize {
    super::scalar::intersection_count(a, b)
}

#[target_feature(enable = "popcnt")]
fn popcnt_intersection_count_at_least(
    a: &[u64],
    card_a: usize,
    b: &[u64],
    card_b: usize,
    threshold: usize,
) -> Option<usize> {
    super::scalar::intersection_count_at_least(a, card_a, b, card_b, threshold)
}

#[target_feature(enable = "popcnt")]
fn popcnt_intersection_count_at_least_suffix(
    a: &[u64],
    suffix_a: &[u32],
    b: &[u64],
    suffix_b: &[u32],
    threshold: usize,
) -> Option<usize> {
    super::scalar::intersection_count_at_least_suffix(a, suffix_a, b, suffix_b, threshold)
}

// ---------------------------------------------------------------------------
// AVX2: 256-bit AND lanes + pshufb-lookup popcount.
// ---------------------------------------------------------------------------

/// Per-64-bit-lane popcounts of `v` via the nibble-lookup algorithm
/// (Muła): per-byte counts from two `vpshufb` table lookups, summed into
/// the four 64-bit lanes by `vpsadbw` against zero.
#[inline]
#[target_feature(enable = "avx2")]
fn popcount_epi64(v: __m256i) -> __m256i {
    #[rustfmt::skip]
    let lookup = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
    );
    let low_mask = _mm256_set1_epi8(0x0f);
    let lo = _mm256_and_si256(v, low_mask);
    let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(v), low_mask);
    let counts = _mm256_add_epi8(
        _mm256_shuffle_epi8(lookup, lo),
        _mm256_shuffle_epi8(lookup, hi),
    );
    _mm256_sad_epu8(counts, _mm256_setzero_si256())
}

/// Horizontal sum of the four 64-bit lanes.
#[inline]
#[target_feature(enable = "avx2")]
fn hsum_epi64(v: __m256i) -> u64 {
    let lo = _mm256_castsi256_si128(v);
    let hi = _mm256_extracti128_si256::<1>(v);
    let s = _mm_add_epi64(lo, hi);
    (_mm_cvtsi128_si64(s) as u64).wrapping_add(_mm_extract_epi64::<1>(s) as u64)
}

/// Unaligned 4-word load starting at `words[i]`.
///
/// # Safety
/// `i + 4 <= words.len()`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn loadu(words: &[u64], i: usize) -> __m256i {
    debug_assert!(i + 4 <= words.len());
    // SAFETY: caller guarantees the 4-word read stays in bounds; loadu has
    // no alignment requirement.
    unsafe { _mm256_loadu_si256(words.as_ptr().add(i).cast()) }
}

#[target_feature(enable = "avx2")]
fn avx2_intersection_count_impl(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    // Two independent accumulators over 8-word steps hide the
    // shuffle/add latency chain of the lookup popcount.
    let mut acc0 = _mm256_setzero_si256();
    let mut acc1 = _mm256_setzero_si256();
    let mut i = 0usize;
    while i + 8 <= n {
        // SAFETY: `i + 8 <= n` bounds all four loads.
        let (va0, vb0, va1, vb1) =
            unsafe { (loadu(a, i), loadu(b, i), loadu(a, i + 4), loadu(b, i + 4)) };
        acc0 = _mm256_add_epi64(acc0, popcount_epi64(_mm256_and_si256(va0, vb0)));
        acc1 = _mm256_add_epi64(acc1, popcount_epi64(_mm256_and_si256(va1, vb1)));
        i += 8;
    }
    if i + 4 <= n {
        // SAFETY: `i + 4 <= n` bounds both loads.
        let (va, vb) = unsafe { (loadu(a, i), loadu(b, i)) };
        acc0 = _mm256_add_epi64(acc0, popcount_epi64(_mm256_and_si256(va, vb)));
        i += 4;
    }
    let mut total = hsum_epi64(_mm256_add_epi64(acc0, acc1)) as usize;
    while i < n {
        total += (a[i] & b[i]).count_ones() as usize;
        i += 1;
    }
    total
}

#[target_feature(enable = "avx2")]
fn avx2_intersection_count_at_least_impl(
    a: &[u64],
    card_a: usize,
    b: &[u64],
    card_b: usize,
    threshold: usize,
) -> Option<usize> {
    debug_assert_eq!(a.len(), b.len());
    if card_a.min(card_b) < threshold {
        return None;
    }
    let n = a.len();
    let mut inter = 0usize;
    let mut seen_a = 0usize;
    let mut seen_b = 0usize;
    let mut i = 0usize;
    // 8-word groups: three popcount streams (∩, a, b), bound-checked per
    // group. Coarser than the scalar per-word check, same Option result.
    while i + 8 <= n {
        // SAFETY: `i + 8 <= n` bounds all four loads.
        let (va0, vb0, va1, vb1) =
            unsafe { (loadu(a, i), loadu(b, i), loadu(a, i + 4), loadu(b, i + 4)) };
        let iv = _mm256_add_epi64(
            popcount_epi64(_mm256_and_si256(va0, vb0)),
            popcount_epi64(_mm256_and_si256(va1, vb1)),
        );
        let av = _mm256_add_epi64(popcount_epi64(va0), popcount_epi64(va1));
        let bv = _mm256_add_epi64(popcount_epi64(vb0), popcount_epi64(vb1));
        inter += hsum_epi64(iv) as usize;
        seen_a += hsum_epi64(av) as usize;
        seen_b += hsum_epi64(bv) as usize;
        i += 8;
        if inter + (card_a - seen_a).min(card_b - seen_b) < threshold {
            return None;
        }
    }
    while i < n {
        inter += (a[i] & b[i]).count_ones() as usize;
        seen_a += a[i].count_ones() as usize;
        seen_b += b[i].count_ones() as usize;
        i += 1;
    }
    if inter + (card_a - seen_a).min(card_b - seen_b) < threshold {
        return None;
    }
    (inter >= threshold).then_some(inter)
}

// Note there is deliberately no AVX2 variant of the *suffix* kernel: its
// bound check needs the running intersection as a scalar every
// [`SUFFIX_STRIDE`] words, so a 256-bit popcount pays a high-latency
// horizontal sum per superblock it cannot amortize — measured slower than
// eight scalar `POPCNT`s on the early-exit-heavy ball-scan workload. The
// AVX2 backend dispatches the suffix shapes to the SSE2/POPCNT loops
// (sound: `Backend::Avx2.supported()` implies `popcnt`); its vector
// popcounts serve the streaming kernels, where whole-slab accumulation
// amortizes the horizontal sum.

// ---------------------------------------------------------------------------
// Batched loops inside the target-feature context.
// ---------------------------------------------------------------------------
//
// The single-pair wrappers above sit on a target-feature boundary, so a
// generic batch loop dispatching through them pays a non-inlinable call per
// row. These loops live *inside* the feature context instead: the per-row
// kernel inlines into the loop and the query constants (and AVX2 popcount
// lookup tables) stay in registers across rows. Soundness is the same
// wrapper contract: `Backend` dispatch reaches the `pub(super)` entry
// points only after runtime feature detection.

macro_rules! stream_loops {
    (
        $backend:expr, $feat:literal,
        $jb_pub:ident / $jb_impl:ident,
        $jr_pub:ident / $jr_impl:ident,
        $count:path
    ) => {
        #[inline]
        pub(super) fn $jb_pub(
            q: &[u64],
            q_card: usize,
            slab: &[u64],
            cards: &[u32],
            words_per_row: usize,
            rows: Range<usize>,
            out: &mut Vec<f64>,
        ) {
            debug_assert!($backend.supported());
            // SAFETY: see the wrapper soundness note at the top of the file.
            unsafe { $jb_impl(q, q_card, slab, cards, words_per_row, rows, out) }
        }

        #[target_feature(enable = $feat)]
        fn $jb_impl(
            q: &[u64],
            q_card: usize,
            slab: &[u64],
            cards: &[u32],
            words_per_row: usize,
            rows: Range<usize>,
            out: &mut Vec<f64>,
        ) {
            out.reserve(rows.len());
            for row in rows {
                let b = &slab[row * words_per_row..(row + 1) * words_per_row];
                out.push(jaccard_from_counts(
                    $count(q, b),
                    q_card,
                    cards[row] as usize,
                ));
            }
        }

        #[inline]
        pub(super) fn $jr_pub(
            q: &[u64],
            q_card: usize,
            slab: &[u64],
            cards: &[u32],
            words_per_row: usize,
            rows: &[u32],
            out: &mut Vec<f64>,
        ) {
            debug_assert!($backend.supported());
            // SAFETY: see the wrapper soundness note at the top of the file.
            unsafe { $jr_impl(q, q_card, slab, cards, words_per_row, rows, out) }
        }

        #[target_feature(enable = $feat)]
        fn $jr_impl(
            q: &[u64],
            q_card: usize,
            slab: &[u64],
            cards: &[u32],
            words_per_row: usize,
            rows: &[u32],
            out: &mut Vec<f64>,
        ) {
            out.reserve(rows.len());
            for &row in rows {
                let row = row as usize;
                let b = &slab[row * words_per_row..(row + 1) * words_per_row];
                out.push(jaccard_from_counts(
                    $count(q, b),
                    q_card,
                    cards[row] as usize,
                ));
            }
        }
    };
}

macro_rules! within_loops {
    (
        $backend:expr, $feat:literal,
        $jwb_pub:ident / $jwb_impl:ident,
        $jwr_pub:ident / $jwr_impl:ident,
        $suffix:path
    ) => {
        #[inline]
        #[allow(clippy::too_many_arguments)]
        pub(super) fn $jwb_pub(
            q: &[u64],
            q_suf: &[u32],
            slab: &[u64],
            sufs: &[u32],
            suf_stride: usize,
            words_per_row: usize,
            rows: Range<usize>,
            radius: f64,
            on_hit: &mut dyn FnMut(usize, f64),
        ) {
            debug_assert!($backend.supported());
            // SAFETY: see the wrapper soundness note at the top of the file.
            unsafe {
                $jwb_impl(
                    q,
                    q_suf,
                    slab,
                    sufs,
                    suf_stride,
                    words_per_row,
                    rows,
                    radius,
                    on_hit,
                )
            }
        }

        #[target_feature(enable = $feat)]
        #[allow(clippy::too_many_arguments)]
        fn $jwb_impl(
            q: &[u64],
            q_suf: &[u32],
            slab: &[u64],
            sufs: &[u32],
            suf_stride: usize,
            words_per_row: usize,
            rows: Range<usize>,
            radius: f64,
            on_hit: &mut dyn FnMut(usize, f64),
        ) {
            let q_card = q_suf[0] as usize;
            let inv = radius_threshold_factor(radius);
            for row in rows {
                let b = &slab[row * words_per_row..(row + 1) * words_per_row];
                let sb = &sufs[row * suf_stride..(row + 1) * suf_stride];
                let hit = jaccard_within_via_inv(q_card, sb[0] as usize, radius, inv, |t| {
                    $suffix(q, q_suf, b, sb, t)
                });
                if let Some(d) = hit {
                    on_hit(row, d);
                }
            }
        }

        #[inline]
        #[allow(clippy::too_many_arguments)]
        pub(super) fn $jwr_pub(
            q: &[u64],
            q_suf: &[u32],
            slab: &[u64],
            sufs: &[u32],
            suf_stride: usize,
            words_per_row: usize,
            rows: &[u32],
            radius: f64,
            on_hit: &mut dyn FnMut(usize, f64),
        ) {
            debug_assert!($backend.supported());
            // SAFETY: see the wrapper soundness note at the top of the file.
            unsafe {
                $jwr_impl(
                    q,
                    q_suf,
                    slab,
                    sufs,
                    suf_stride,
                    words_per_row,
                    rows,
                    radius,
                    on_hit,
                )
            }
        }

        #[target_feature(enable = $feat)]
        #[allow(clippy::too_many_arguments)]
        fn $jwr_impl(
            q: &[u64],
            q_suf: &[u32],
            slab: &[u64],
            sufs: &[u32],
            suf_stride: usize,
            words_per_row: usize,
            rows: &[u32],
            radius: f64,
            on_hit: &mut dyn FnMut(usize, f64),
        ) {
            let q_card = q_suf[0] as usize;
            let inv = radius_threshold_factor(radius);
            for (k, &row) in rows.iter().enumerate() {
                let row = row as usize;
                let b = &slab[row * words_per_row..(row + 1) * words_per_row];
                let sb = &sufs[row * suf_stride..(row + 1) * suf_stride];
                let hit = jaccard_within_via_inv(q_card, sb[0] as usize, radius, inv, |t| {
                    $suffix(q, q_suf, b, sb, t)
                });
                if let Some(d) = hit {
                    on_hit(k, d);
                }
            }
        }
    };
}

stream_loops!(
    super::Backend::Sse2,
    "popcnt",
    sse2_jaccard_batch / popcnt_jaccard_batch_impl,
    sse2_jaccard_rows / popcnt_jaccard_rows_impl,
    super::scalar::intersection_count
);

// The within (bounded suffix) loops exist only in the POPCNT flavor; the
// AVX2 backend dispatches to them too (see the note above the streaming
// kernels).
within_loops!(
    super::Backend::Sse2,
    "popcnt",
    sse2_jaccard_within_batch / popcnt_jaccard_within_batch_impl,
    sse2_jaccard_within_rows / popcnt_jaccard_within_rows_impl,
    super::scalar::intersection_count_at_least_suffix
);

stream_loops!(
    super::Backend::Avx2,
    "avx2,popcnt",
    avx2_jaccard_batch / avx2_jaccard_batch_impl,
    avx2_jaccard_rows / avx2_jaccard_rows_impl,
    avx2_intersection_count_impl
);
