//! Word-level tid-set kernels shared by [`crate::TidSet`] and external
//! structure-of-arrays pools, with runtime-dispatched SIMD backends.
//!
//! The ball-query engine in `cfp-core` keeps tid-sets as contiguous `u64`
//! word slabs (one slab per pool) instead of `Vec<TidSet>`, so the hot
//! distance kernels are exposed here over raw word slices plus cached
//! cardinalities. With `|A|` and `|B|` known up front, a Jaccard distance
//! needs a single intersection popcount (`|A ∪ B| = |A| + |B| − |A ∩ B|`)
//! instead of the two popcounts per word the naive formulation pays, and a
//! radius test can abort the word loop as soon as the remaining words cannot
//! lift the intersection above the required threshold.
//!
//! # Backends and dispatch rules
//!
//! Every kernel has three implementations behind the [`Backend`] enum:
//!
//! * [`Backend::Scalar`] — portable `u64` loops ([`scalar`]); the reference
//!   semantics, available everywhere.
//! * [`Backend::Sse2`] — the same loops compiled with the hardware `POPCNT`
//!   instruction (requires the `popcnt` CPU feature; SSE2 itself is baseline
//!   x86-64).
//! * [`Backend::Avx2`] — 256-bit AND lanes + vectorized lookup popcount
//!   (requires `avx2`, and `popcnt` for ragged tails).
//!
//! Selection happens **once**, lazily, at the first kernel call:
//! [`Backend::active`] picks the best CPU-supported backend via
//! `is_x86_feature_detected!`, clamped by the `CFP_KERNEL_BACKEND`
//! environment variable (`scalar` | `sse2` | `avx2`, acting as a *ceiling*:
//! a request the CPU cannot honor falls back to the best supported backend
//! below it; unknown values are ignored). Non-x86-64 targets always get the
//! scalar backend. [`Backend::set`] re-points the process-wide choice at any
//! time — safe mid-run, because **all backends return bit-identical
//! results**: they compute the same integer popcounts, so every derived
//! float compares identically and fusion output does not depend on the
//! backend (a property test and an end-to-end test enforce this).
//!
//! The module-level free functions dispatch through [`Backend::active`];
//! the same kernels are available as methods on a concrete [`Backend`] value
//! for tests and benchmarks that compare implementations side by side.
//!
//! # Batched kernels and the alignment contract
//!
//! Pool scans are one-query-vs-many shaped, so alongside the single-pair
//! kernels there are batched entry points ([`jaccard_within_batch`],
//! [`jaccard_within_rows`], [`jaccard_batch`], [`jaccard_rows`],
//! [`intersection_count_batch`]) that stream one query's words against rows
//! of a contiguous structure-of-arrays slab (row `r` occupies
//! `slab[r * words_per_row ..][.. words_per_row]`), resolving the backend
//! once per batch and keeping the query hot in cache.
//!
//! Slabs produced by [`crate::aligned::AlignedWords`] (which includes every
//! [`crate::TidSet`]'s blocks, zero-padded to a whole number of 32-byte
//! lanes) start 32-byte aligned, and a lane-multiple `words_per_row` keeps
//! every row aligned too. The SIMD backends use unaligned loads, so this is
//! a **performance contract, not a safety requirement**: arbitrary word
//! slices are accepted (ragged tails run scalar), aligned lane-padded slabs
//! merely run split-free.

mod scalar;
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86;

use std::ops::Range;
use std::sync::atomic::{AtomicU8, Ordering};

/// A tid-set kernel implementation, selectable at runtime.
///
/// All backends compute identical integer popcounts (and therefore identical
/// floats); they differ only in speed. See the module docs for the dispatch
/// rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Backend {
    /// Portable `u64` word loops; the reference implementation.
    #[default]
    Scalar = 1,
    /// Scalar loops with the hardware `POPCNT` instruction (x86-64 with the
    /// `popcnt` feature).
    Sse2 = 2,
    /// 256-bit AND lanes with vectorized lookup popcount (x86-64 with the
    /// `avx2` feature).
    Avx2 = 3,
}

/// Process-wide active backend; 0 = not yet detected.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

impl Backend {
    fn from_u8(v: u8) -> Backend {
        match v {
            2 => Backend::Sse2,
            3 => Backend::Avx2,
            _ => Backend::Scalar,
        }
    }

    /// Short lower-case name (`"scalar"` | `"sse2"` | `"avx2"`), the same
    /// vocabulary `CFP_KERNEL_BACKEND` accepts.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
        }
    }

    /// Whether the running CPU can execute this backend.
    pub fn supported(self) -> bool {
        match self {
            Backend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Sse2 => std::arch::is_x86_feature_detected!("popcnt"),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("popcnt")
            }
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// Every backend the running CPU supports, slowest first (always starts
    /// with [`Backend::Scalar`]).
    pub fn available() -> Vec<Backend> {
        [Backend::Scalar, Backend::Sse2, Backend::Avx2]
            .into_iter()
            .filter(|b| b.supported())
            .collect()
    }

    /// The fastest supported backend at or below `ceiling`.
    fn best_supported(ceiling: Backend) -> Backend {
        Backend::available()
            .into_iter()
            .rfind(|&b| b <= ceiling)
            .unwrap_or(Backend::Scalar)
    }

    /// Detects the backend the process should use: the best CPU-supported
    /// one, clamped by `CFP_KERNEL_BACKEND` (see the module docs).
    pub fn detect() -> Backend {
        let ceiling = match std::env::var("CFP_KERNEL_BACKEND").as_deref() {
            Ok("scalar") => Backend::Scalar,
            Ok("sse2") => Backend::Sse2,
            _ => Backend::Avx2,
        };
        Backend::best_supported(ceiling)
    }

    /// The process-wide active backend, detecting it on first use.
    pub fn active() -> Backend {
        match ACTIVE.load(Ordering::Relaxed) {
            0 => {
                let b = Backend::detect();
                // A racing first call computes the same value.
                ACTIVE.store(b as u8, Ordering::Relaxed);
                b
            }
            v => Backend::from_u8(v),
        }
    }

    /// Re-points the process-wide backend at `requested` (clamped to what
    /// the CPU supports) and returns the backend actually installed.
    ///
    /// Safe at any time — backends are bit-identical in results — but
    /// process-global: concurrent runs all see the change. Meant for
    /// benchmarks and determinism tests.
    pub fn set(requested: Backend) -> Backend {
        let actual = Backend::best_supported(requested);
        ACTIVE.store(actual as u8, Ordering::Relaxed);
        actual
    }

    /// Panics unless the CPU supports this backend — the guard on the public
    /// per-backend kernel methods (the hot free functions skip it: their
    /// backend comes from [`Backend::active`], which only yields supported
    /// backends).
    fn check(self) {
        assert!(
            self.supported(),
            "kernel backend '{}' is not supported by this CPU",
            self.name()
        );
    }

    // -- private dispatch (callers guarantee `self.supported()`) ------------

    #[inline]
    fn inter_count(self, a: &[u64], b: &[u64]) -> usize {
        match self {
            Backend::Scalar => scalar::intersection_count(a, b),
            #[cfg(target_arch = "x86_64")]
            Backend::Sse2 => x86::sse2_intersection_count(a, b),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => x86::avx2_intersection_count(a, b),
            #[cfg(not(target_arch = "x86_64"))]
            _ => scalar::intersection_count(a, b),
        }
    }

    #[inline]
    fn inter_at_least(
        self,
        a: &[u64],
        card_a: usize,
        b: &[u64],
        card_b: usize,
        threshold: usize,
    ) -> Option<usize> {
        match self {
            Backend::Scalar => scalar::intersection_count_at_least(a, card_a, b, card_b, threshold),
            #[cfg(target_arch = "x86_64")]
            Backend::Sse2 => x86::sse2_intersection_count_at_least(a, card_a, b, card_b, threshold),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => x86::avx2_intersection_count_at_least(a, card_a, b, card_b, threshold),
            #[cfg(not(target_arch = "x86_64"))]
            _ => scalar::intersection_count_at_least(a, card_a, b, card_b, threshold),
        }
    }

    #[inline]
    fn inter_at_least_suffix(
        self,
        a: &[u64],
        suffix_a: &[u32],
        b: &[u64],
        suffix_b: &[u32],
        threshold: usize,
    ) -> Option<usize> {
        match self {
            Backend::Scalar => {
                scalar::intersection_count_at_least_suffix(a, suffix_a, b, suffix_b, threshold)
            }
            // Both SIMD backends run the suffix kernel as the POPCNT loop:
            // its per-superblock scalar bound check defeats vector
            // popcounts (see the note in `x86`). Sound for Avx2 because
            // `Backend::Avx2.supported()` requires `popcnt` too.
            #[cfg(target_arch = "x86_64")]
            Backend::Sse2 | Backend::Avx2 => {
                x86::sse2_intersection_count_at_least_suffix(a, suffix_a, b, suffix_b, threshold)
            }
            #[cfg(not(target_arch = "x86_64"))]
            _ => scalar::intersection_count_at_least_suffix(a, suffix_a, b, suffix_b, threshold),
        }
    }

    // -- public per-backend kernels (for tests and benchmarks) --------------

    /// `|a ∩ b|` with this backend. See [`intersection_count_words`].
    ///
    /// # Panics
    /// Panics when the CPU does not support this backend.
    pub fn intersection_count(self, a: &[u64], b: &[u64]) -> usize {
        self.check();
        self.inter_count(a, b)
    }

    /// Bounded `|a ∩ b|` with this backend. See
    /// [`intersection_count_at_least_words`].
    ///
    /// # Panics
    /// Panics when the CPU does not support this backend.
    pub fn intersection_count_at_least(
        self,
        a: &[u64],
        card_a: usize,
        b: &[u64],
        card_b: usize,
        threshold: usize,
    ) -> Option<usize> {
        self.check();
        self.inter_at_least(a, card_a, b, card_b, threshold)
    }

    /// Bounded `|a ∩ b|` with suffix-table aborts, with this backend. See
    /// [`intersection_count_at_least_suffix`].
    ///
    /// # Panics
    /// Panics when the CPU does not support this backend.
    pub fn intersection_count_at_least_suffix(
        self,
        a: &[u64],
        suffix_a: &[u32],
        b: &[u64],
        suffix_b: &[u32],
        threshold: usize,
    ) -> Option<usize> {
        self.check();
        self.inter_at_least_suffix(a, suffix_a, b, suffix_b, threshold)
    }

    /// Jaccard distance with this backend. See [`jaccard_words`].
    ///
    /// # Panics
    /// Panics when the CPU does not support this backend.
    pub fn jaccard(self, a: &[u64], card_a: usize, b: &[u64], card_b: usize) -> f64 {
        self.check();
        jaccard_from_counts(self.inter_count(a, b), card_a, card_b)
    }

    /// Radius-bounded Jaccard with this backend. See
    /// [`jaccard_within_words`].
    ///
    /// # Panics
    /// Panics when the CPU does not support this backend.
    pub fn jaccard_within(
        self,
        a: &[u64],
        card_a: usize,
        b: &[u64],
        card_b: usize,
        radius: f64,
    ) -> Option<f64> {
        self.check();
        jaccard_within_via(card_a, card_b, radius, |threshold| {
            self.inter_at_least(a, card_a, b, card_b, threshold)
        })
    }

    /// Radius-bounded Jaccard over suffix tables with this backend. See
    /// [`jaccard_within_suffix`].
    ///
    /// # Panics
    /// Panics when the CPU does not support this backend.
    pub fn jaccard_within_suffix(
        self,
        a: &[u64],
        suffix_a: &[u32],
        b: &[u64],
        suffix_b: &[u32],
        radius: f64,
    ) -> Option<f64> {
        self.check();
        jaccard_within_via(suffix_a[0] as usize, suffix_b[0] as usize, radius, |t| {
            self.inter_at_least_suffix(a, suffix_a, b, suffix_b, t)
        })
    }

    // -- public batched kernels ---------------------------------------------

    /// One query vs the contiguous slab rows `rows`: calls `on_hit(row, d)`
    /// for every row whose Jaccard distance to `q` is ≤ `radius`, in
    /// ascending row order. See the module docs for the slab layout.
    ///
    /// `q_suf` / `sufs` are [`suffix_cards`] tables (`suf_stride` entries
    /// per row); cardinalities come from their leading entries. Acceptance
    /// per row is exactly [`jaccard_within_suffix`]'s float comparison.
    ///
    /// # Panics
    /// Panics when the CPU does not support this backend.
    #[allow(clippy::too_many_arguments)]
    pub fn jaccard_within_batch(
        self,
        q: &[u64],
        q_suf: &[u32],
        slab: &[u64],
        sufs: &[u32],
        suf_stride: usize,
        words_per_row: usize,
        rows: Range<usize>,
        radius: f64,
        on_hit: &mut dyn FnMut(usize, f64),
    ) {
        self.check();
        match self {
            // POPCNT loop for both SIMD backends — see `inter_at_least_suffix`.
            #[cfg(target_arch = "x86_64")]
            Backend::Sse2 | Backend::Avx2 => x86::sse2_jaccard_within_batch(
                q,
                q_suf,
                slab,
                sufs,
                suf_stride,
                words_per_row,
                rows,
                radius,
                on_hit,
            ),
            _ => {
                let q_card = q_suf[0] as usize;
                let inv = radius_threshold_factor(radius);
                for row in rows {
                    let b = &slab[row * words_per_row..(row + 1) * words_per_row];
                    let sb = &sufs[row * suf_stride..(row + 1) * suf_stride];
                    let hit = jaccard_within_via_inv(q_card, sb[0] as usize, radius, inv, |t| {
                        self.inter_at_least_suffix(q, q_suf, b, sb, t)
                    });
                    if let Some(d) = hit {
                        on_hit(row, d);
                    }
                }
            }
        }
    }

    /// [`Backend::jaccard_within_batch`] over an explicit row list (gather
    /// form): `on_hit(k, d)` reports hits by index `k` into `rows`.
    ///
    /// # Panics
    /// Panics when the CPU does not support this backend.
    #[allow(clippy::too_many_arguments)]
    pub fn jaccard_within_rows(
        self,
        q: &[u64],
        q_suf: &[u32],
        slab: &[u64],
        sufs: &[u32],
        suf_stride: usize,
        words_per_row: usize,
        rows: &[u32],
        radius: f64,
        on_hit: &mut dyn FnMut(usize, f64),
    ) {
        self.check();
        match self {
            // POPCNT loop for both SIMD backends — see `inter_at_least_suffix`.
            #[cfg(target_arch = "x86_64")]
            Backend::Sse2 | Backend::Avx2 => x86::sse2_jaccard_within_rows(
                q,
                q_suf,
                slab,
                sufs,
                suf_stride,
                words_per_row,
                rows,
                radius,
                on_hit,
            ),
            _ => {
                let q_card = q_suf[0] as usize;
                let inv = radius_threshold_factor(radius);
                for (k, &row) in rows.iter().enumerate() {
                    let row = row as usize;
                    let b = &slab[row * words_per_row..(row + 1) * words_per_row];
                    let sb = &sufs[row * suf_stride..(row + 1) * suf_stride];
                    let hit = jaccard_within_via_inv(q_card, sb[0] as usize, radius, inv, |t| {
                        self.inter_at_least_suffix(q, q_suf, b, sb, t)
                    });
                    if let Some(d) = hit {
                        on_hit(k, d);
                    }
                }
            }
        }
    }

    /// Full (unbounded) Jaccard distances of one query vs the contiguous
    /// slab rows `rows`, appended to `out` in row order. `cards[row]` is
    /// each row's cached cardinality.
    ///
    /// # Panics
    /// Panics when the CPU does not support this backend.
    #[allow(clippy::too_many_arguments)]
    pub fn jaccard_batch(
        self,
        q: &[u64],
        q_card: usize,
        slab: &[u64],
        cards: &[u32],
        words_per_row: usize,
        rows: Range<usize>,
        out: &mut Vec<f64>,
    ) {
        self.check();
        match self {
            #[cfg(target_arch = "x86_64")]
            Backend::Sse2 => {
                x86::sse2_jaccard_batch(q, q_card, slab, cards, words_per_row, rows, out)
            }
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => {
                x86::avx2_jaccard_batch(q, q_card, slab, cards, words_per_row, rows, out)
            }
            _ => {
                out.reserve(rows.len());
                for row in rows {
                    let b = &slab[row * words_per_row..(row + 1) * words_per_row];
                    let inter = self.inter_count(q, b);
                    out.push(jaccard_from_counts(inter, q_card, cards[row] as usize));
                }
            }
        }
    }

    /// [`Backend::jaccard_batch`] over an explicit row list (gather form).
    ///
    /// # Panics
    /// Panics when the CPU does not support this backend.
    #[allow(clippy::too_many_arguments)]
    pub fn jaccard_rows(
        self,
        q: &[u64],
        q_card: usize,
        slab: &[u64],
        cards: &[u32],
        words_per_row: usize,
        rows: &[u32],
        out: &mut Vec<f64>,
    ) {
        self.check();
        match self {
            #[cfg(target_arch = "x86_64")]
            Backend::Sse2 => {
                x86::sse2_jaccard_rows(q, q_card, slab, cards, words_per_row, rows, out)
            }
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => {
                x86::avx2_jaccard_rows(q, q_card, slab, cards, words_per_row, rows, out)
            }
            _ => {
                out.reserve(rows.len());
                for &row in rows {
                    let row = row as usize;
                    let b = &slab[row * words_per_row..(row + 1) * words_per_row];
                    let inter = self.inter_count(q, b);
                    out.push(jaccard_from_counts(inter, q_card, cards[row] as usize));
                }
            }
        }
    }

    /// `|q ∩ row|` for each contiguous slab row in `rows`, appended to
    /// `out` in row order.
    ///
    /// Convenience wrapper: unlike the Jaccard batch kernels, this loop
    /// dispatches per row across the target-feature boundary (one
    /// non-inlinable call per row on the SIMD backends). Nothing on a hot
    /// path consumes raw batched counts today; if one appears, give this
    /// the same in-context loop treatment as `jaccard_batch`.
    ///
    /// # Panics
    /// Panics when the CPU does not support this backend.
    pub fn intersection_count_batch(
        self,
        q: &[u64],
        slab: &[u64],
        words_per_row: usize,
        rows: Range<usize>,
        out: &mut Vec<u32>,
    ) {
        self.check();
        out.reserve(rows.len());
        for row in rows {
            let b = &slab[row * words_per_row..(row + 1) * words_per_row];
            out.push(self.inter_count(q, b) as u32);
        }
    }
}

/// `|a ∩ b|` over word slices.
#[inline]
pub fn intersection_count_words(a: &[u64], b: &[u64]) -> usize {
    Backend::active().inter_count(a, b)
}

/// `|a ∩ b|` if it reaches `threshold`, else `None` — aborting the word loop
/// once the bits not yet scanned cannot close the gap.
///
/// `card_a` / `card_b` are the cached cardinalities of `a` / `b`; the running
/// upper bound is `seen ∩ + min(unseen a-bits, unseen b-bits)`, which only
/// shrinks, so the first violation is final. Abort granularity varies by
/// backend (per word scalar, per lane group SIMD); the returned `Option` and
/// count never do.
#[inline]
pub fn intersection_count_at_least_words(
    a: &[u64],
    card_a: usize,
    b: &[u64],
    card_b: usize,
    threshold: usize,
) -> Option<usize> {
    Backend::active().inter_at_least(a, card_a, b, card_b, threshold)
}

/// Jaccard distance `1 − |a ∩ b| / |a ∪ b|` from one intersection popcount
/// and the cached cardinalities. Distance between two empty sets is `0`.
#[inline]
pub fn jaccard_words(a: &[u64], card_a: usize, b: &[u64], card_b: usize) -> f64 {
    let inter = intersection_count_words(a, b);
    jaccard_from_counts(inter, card_a, card_b)
}

/// Jaccard distance given `|a ∩ b|` and the two cardinalities.
#[inline]
pub fn jaccard_from_counts(inter: usize, card_a: usize, card_b: usize) -> f64 {
    let union = card_a + card_b - inter;
    if union == 0 {
        0.0
    } else {
        1.0 - inter as f64 / union as f64
    }
}

/// The cardinality-independent factor of the abort-threshold derivation:
/// `d ≤ r ⟺ |∩| ≥ (1−r)(|A|+|B|)/(2−r)`, so the per-pair threshold is this
/// reciprocal times `|A|+|B|`. Batched kernels hoist the division out of
/// their row loops; the factored product rounds differently from the
/// two-step quotient by at most a few ulps, which the threshold's `−1`
/// slack absorbs (see [`jaccard_within_via`]) — results never depend on it.
#[inline]
fn radius_threshold_factor(radius: f64) -> f64 {
    (1.0 - radius) / (2.0 - radius)
}

/// Shared shell of the radius-bounded Jaccard kernels: empty-set
/// convention, the abort-threshold derivation, and the exact acceptance
/// test, with the bounded intersection count injected by the caller.
/// `inv` is [`radius_threshold_factor`]`(radius)`, computed once per batch.
///
/// The acceptance test is **exactly** `jaccard_from_counts(..) <= radius` —
/// the same float expression a brute-force scan evaluates — so callers
/// pruning with these kernels return bit-identical balls. The integer abort
/// threshold is derived from `d ≤ r ⟺ |∩| ≥ (1−r)(|A|+|B|)/(2−r)` and
/// slackened by one to absorb float rounding (of the distance *and* of the
/// factored reciprocal form), which can only cause a harmless extra exact
/// check, never a false reject: the rounding error is far below 1, so the
/// floor shifts by at most one unit, which the `−1` eats. For `radius ≥ 1`
/// the threshold degenerates to 0 (Jaccard never exceeds 1, and the
/// derivation's denominator changes sign at 2).
#[inline]
fn jaccard_within_via_inv(
    card_a: usize,
    card_b: usize,
    radius: f64,
    inv: f64,
    intersection_at_least: impl FnOnce(usize) -> Option<usize>,
) -> Option<f64> {
    if card_a == 0 && card_b == 0 {
        // Both empty: distance is 0 by convention.
        return (radius >= 0.0).then_some(0.0);
    }
    let threshold = if radius >= 1.0 {
        0
    } else {
        let needed = inv * (card_a + card_b) as f64;
        (needed.floor() as usize).saturating_sub(1)
    };
    let inter = intersection_at_least(threshold)?;
    let d = jaccard_from_counts(inter, card_a, card_b);
    (d <= radius).then_some(d)
}

/// [`jaccard_within_via_inv`] with the factor computed in place — the
/// single-pair entry point.
#[inline]
fn jaccard_within_via(
    card_a: usize,
    card_b: usize,
    radius: f64,
    intersection_at_least: impl FnOnce(usize) -> Option<usize>,
) -> Option<f64> {
    jaccard_within_via_inv(
        card_a,
        card_b,
        radius,
        radius_threshold_factor(radius),
        intersection_at_least,
    )
}

/// `Some(distance)` when `jaccard(a, b) ≤ radius`, else `None`, with the
/// bounded early-exit intersection kernel doing the heavy lifting (see
/// [`jaccard_within_via`] for the threshold contract).
#[inline]
pub fn jaccard_within_words(
    a: &[u64],
    card_a: usize,
    b: &[u64],
    card_b: usize,
    radius: f64,
) -> Option<f64> {
    let backend = Backend::active();
    jaccard_within_via(card_a, card_b, radius, |threshold| {
        backend.inter_at_least(a, card_a, b, card_b, threshold)
    })
}

/// Superblock width, in words, of the suffix-cardinality tables used by the
/// arena kernels below.
pub const SUFFIX_STRIDE: usize = 8;

/// Suffix popcounts at [`SUFFIX_STRIDE`] granularity:
/// `out[k] = popcount(words[k·STRIDE ..])`, with a trailing `0` sentinel.
///
/// A pool precomputes one table per pattern (a few bytes each); the scan
/// kernel then gets a *strong* early-exit bound — remaining intersection ≤
/// `min` of both sets' unscanned bits — for one array lookup per superblock
/// instead of popcounting both operands at every word.
pub fn suffix_cards(words: &[u64]) -> Vec<u32> {
    let mut out = Vec::new();
    suffix_cards_into(words, &mut out);
    out
}

/// [`suffix_cards`] appending into an existing buffer — the arena build path
/// computes one table per pool pattern per iteration and must not allocate
/// per pattern.
pub fn suffix_cards_into(words: &[u64], out: &mut Vec<u32>) {
    let blocks = words.len().div_ceil(SUFFIX_STRIDE);
    let base = out.len();
    out.resize(base + blocks + 1, 0);
    for k in (0..blocks).rev() {
        let start = k * SUFFIX_STRIDE;
        let end = (start + SUFFIX_STRIDE).min(words.len());
        out[base + k] = out[base + k + 1]
            + words[start..end]
                .iter()
                .map(|w| w.count_ones())
                .sum::<u32>();
    }
}

/// [`intersection_count_at_least_words`] with the bound coming from
/// precomputed [`suffix_cards`] tables: one AND + one popcount per word
/// (half the popcounts of a naive two-popcount Jaccard) plus one bound check
/// per [`SUFFIX_STRIDE`] words.
#[inline]
pub fn intersection_count_at_least_suffix(
    a: &[u64],
    suffix_a: &[u32],
    b: &[u64],
    suffix_b: &[u32],
    threshold: usize,
) -> Option<usize> {
    Backend::active().inter_at_least_suffix(a, suffix_a, b, suffix_b, threshold)
}

/// [`jaccard_within_words`] driven by the suffix-table kernel — the ball
/// scan's hot path. Acceptance is the same exact float comparison.
#[inline]
pub fn jaccard_within_suffix(
    a: &[u64],
    suffix_a: &[u32],
    b: &[u64],
    suffix_b: &[u32],
    radius: f64,
) -> Option<f64> {
    let backend = Backend::active();
    jaccard_within_via(suffix_a[0] as usize, suffix_b[0] as usize, radius, |t| {
        backend.inter_at_least_suffix(a, suffix_a, b, suffix_b, t)
    })
}

/// [`Backend::jaccard_within_batch`] on the active backend.
#[allow(clippy::too_many_arguments)]
pub fn jaccard_within_batch(
    q: &[u64],
    q_suf: &[u32],
    slab: &[u64],
    sufs: &[u32],
    suf_stride: usize,
    words_per_row: usize,
    rows: Range<usize>,
    radius: f64,
    on_hit: &mut dyn FnMut(usize, f64),
) {
    Backend::active().jaccard_within_batch(
        q,
        q_suf,
        slab,
        sufs,
        suf_stride,
        words_per_row,
        rows,
        radius,
        on_hit,
    );
}

/// [`Backend::jaccard_within_rows`] on the active backend.
#[allow(clippy::too_many_arguments)]
pub fn jaccard_within_rows(
    q: &[u64],
    q_suf: &[u32],
    slab: &[u64],
    sufs: &[u32],
    suf_stride: usize,
    words_per_row: usize,
    rows: &[u32],
    radius: f64,
    on_hit: &mut dyn FnMut(usize, f64),
) {
    Backend::active().jaccard_within_rows(
        q,
        q_suf,
        slab,
        sufs,
        suf_stride,
        words_per_row,
        rows,
        radius,
        on_hit,
    );
}

/// [`Backend::jaccard_batch`] on the active backend.
#[allow(clippy::too_many_arguments)]
pub fn jaccard_batch(
    q: &[u64],
    q_card: usize,
    slab: &[u64],
    cards: &[u32],
    words_per_row: usize,
    rows: Range<usize>,
    out: &mut Vec<f64>,
) {
    Backend::active().jaccard_batch(q, q_card, slab, cards, words_per_row, rows, out);
}

/// [`Backend::jaccard_rows`] on the active backend.
#[allow(clippy::too_many_arguments)]
pub fn jaccard_rows(
    q: &[u64],
    q_card: usize,
    slab: &[u64],
    cards: &[u32],
    words_per_row: usize,
    rows: &[u32],
    out: &mut Vec<f64>,
) {
    Backend::active().jaccard_rows(q, q_card, slab, cards, words_per_row, rows, out);
}

/// [`Backend::intersection_count_batch`] on the active backend.
pub fn intersection_count_batch(
    q: &[u64],
    slab: &[u64],
    words_per_row: usize,
    rows: Range<usize>,
    out: &mut Vec<u32>,
) {
    Backend::active().intersection_count_batch(q, slab, words_per_row, rows, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(bits: &[usize], universe: usize) -> (Vec<u64>, usize) {
        let mut w = vec![0u64; universe.div_ceil(64)];
        for &b in bits {
            w[b / 64] |= 1 << (b % 64);
        }
        (w, bits.len())
    }

    #[test]
    fn intersection_count_matches_naive() {
        let (a, _) = words(&[1, 2, 3, 64, 130], 200);
        let (b, _) = words(&[2, 3, 64, 131], 200);
        assert_eq!(intersection_count_words(&a, &b), 3);
    }

    #[test]
    fn at_least_kernel_is_exact_when_it_returns() {
        let (a, ca) = words(&[0, 1, 2, 3, 70, 71], 160);
        let (b, cb) = words(&[2, 3, 70, 100], 160);
        assert_eq!(
            intersection_count_at_least_words(&a, ca, &b, cb, 0),
            Some(3)
        );
        assert_eq!(
            intersection_count_at_least_words(&a, ca, &b, cb, 3),
            Some(3)
        );
        assert_eq!(intersection_count_at_least_words(&a, ca, &b, cb, 4), None);
        // Cardinality precheck: min(|A|,|B|) < threshold without scanning.
        assert_eq!(intersection_count_at_least_words(&a, ca, &b, cb, 5), None);
    }

    #[test]
    fn jaccard_within_agrees_with_direct_formula() {
        let (a, ca) = words(&[1, 2, 3, 7], 10);
        let (b, cb) = words(&[2, 3, 4], 10);
        // d = 1 - 2/5 = 0.6
        let d = jaccard_words(&a, ca, &b, cb);
        assert!((d - 0.6).abs() < 1e-12);
        assert_eq!(jaccard_within_words(&a, ca, &b, cb, 0.6), Some(d));
        assert_eq!(jaccard_within_words(&a, ca, &b, cb, 0.59), None);
        assert_eq!(jaccard_within_words(&a, ca, &b, cb, 1.0), Some(d));
    }

    #[test]
    fn empty_sets_have_zero_distance() {
        let (a, ca) = words(&[], 100);
        let (b, cb) = words(&[], 100);
        assert_eq!(jaccard_within_words(&a, ca, &b, cb, 0.0), Some(0.0));
        let (c, cc) = words(&[5], 100);
        assert_eq!(jaccard_words(&a, ca, &c, cc), 1.0);
    }

    #[test]
    fn suffix_tables_and_kernel_match_plain_kernels() {
        // Multi-superblock universe so aborts can fire mid-scan.
        let universe = 64 * 24;
        let a_bits: Vec<usize> = (0..universe).filter(|i| i % 3 == 0).collect();
        let b_bits: Vec<usize> = (0..universe).filter(|i| i % 5 == 0 && *i < 700).collect();
        let (a, ca) = words(&a_bits, universe);
        let (b, cb) = words(&b_bits, universe);
        let sa = suffix_cards(&a);
        let sb = suffix_cards(&b);
        assert_eq!(sa[0] as usize, ca);
        assert_eq!(*sa.last().unwrap(), 0);
        let inter = intersection_count_words(&a, &b);
        for t in [0, 1, inter, inter + 1, inter + 50] {
            assert_eq!(
                intersection_count_at_least_suffix(&a, &sa, &b, &sb, t),
                intersection_count_at_least_words(&a, ca, &b, cb, t),
                "threshold {t}"
            );
        }
        for r in [0.0, 0.3, 0.5, 0.8, 0.95, 1.0] {
            assert_eq!(
                jaccard_within_suffix(&a, &sa, &b, &sb, r),
                jaccard_within_words(&a, ca, &b, cb, r),
                "radius {r}"
            );
        }
    }

    #[test]
    fn boundary_radii_match_brute_force_over_small_universe() {
        // Every pair of subsets of a 6-bit universe, every rational radius
        // i/u: the kernel must agree with the direct float comparison.
        for ma in 0u64..64 {
            for mb in 0u64..64 {
                let a = [ma];
                let b = [mb];
                let ca = ma.count_ones() as usize;
                let cb = mb.count_ones() as usize;
                let d = jaccard_words(&a, ca, &b, cb);
                for num in 0..=6usize {
                    for den in 1..=6usize {
                        let r = num as f64 / den as f64;
                        let want = d <= r;
                        let got = jaccard_within_words(&a, ca, &b, cb, r).is_some();
                        assert_eq!(got, want, "ma={ma:b} mb={mb:b} r={r}");
                    }
                }
            }
        }
    }

    #[test]
    fn backend_selection_rules() {
        // Scalar is always supported and always listed first.
        assert!(Backend::Scalar.supported());
        let avail = Backend::available();
        assert_eq!(avail.first(), Some(&Backend::Scalar));
        assert!(avail.windows(2).all(|w| w[0] < w[1]));
        // active() yields a supported backend; set() clamps to support.
        assert!(Backend::active().supported());
        for &b in &[Backend::Scalar, Backend::Sse2, Backend::Avx2] {
            let actual = Backend::set(b);
            assert!(actual.supported());
            assert!(actual <= b);
            assert_eq!(Backend::active(), actual);
        }
        assert_eq!(Backend::set(Backend::Scalar), Backend::Scalar);
        assert_eq!(Backend::active(), Backend::Scalar);
        assert_eq!(Backend::Avx2.name(), "avx2");
        // Restore the detected backend for the rest of the process.
        Backend::set(Backend::detect());
    }

    #[test]
    fn every_available_backend_matches_scalar_on_fixtures() {
        let universe = 64 * 21 + 17; // ragged tail
        let a_bits: Vec<usize> = (0..universe).filter(|i| i % 3 == 0).collect();
        let b_bits: Vec<usize> = (0..universe).filter(|i| i % 7 == 2).collect();
        let (a, ca) = words(&a_bits, universe);
        let (b, cb) = words(&b_bits, universe);
        let sa = suffix_cards(&a);
        let sb = suffix_cards(&b);
        let want_inter = Backend::Scalar.intersection_count(&a, &b);
        for backend in Backend::available() {
            assert_eq!(
                backend.intersection_count(&a, &b),
                want_inter,
                "{backend:?}"
            );
            for t in [0, want_inter, want_inter + 1, ca] {
                assert_eq!(
                    backend.intersection_count_at_least(&a, ca, &b, cb, t),
                    Backend::Scalar.intersection_count_at_least(&a, ca, &b, cb, t),
                    "{backend:?} t={t}"
                );
                assert_eq!(
                    backend.intersection_count_at_least_suffix(&a, &sa, &b, &sb, t),
                    Backend::Scalar.intersection_count_at_least_suffix(&a, &sa, &b, &sb, t),
                    "{backend:?} t={t}"
                );
            }
            for r in [0.0, 0.4, 0.9, 1.0] {
                assert_eq!(
                    backend.jaccard_within(&a, ca, &b, cb, r),
                    Backend::Scalar.jaccard_within(&a, ca, &b, cb, r),
                    "{backend:?} r={r}"
                );
            }
        }
    }

    #[test]
    fn batched_kernels_match_per_pair_calls() {
        // A small slab: 9 rows × 6 words, query with a different period.
        let words_per_row = 6;
        let n_rows = 9;
        let mut slab = Vec::new();
        let mut cards = Vec::new();
        let mut sufs = Vec::new();
        for r in 0..n_rows {
            let bits: Vec<usize> = (0..words_per_row * 64)
                .filter(|i| (i + r) % (r + 2) == 0)
                .collect();
            let (w, c) = words(&bits, words_per_row * 64);
            slab.extend_from_slice(&w);
            cards.push(c as u32);
            suffix_cards_into(&w, &mut sufs);
        }
        let suf_stride = words_per_row.div_ceil(SUFFIX_STRIDE) + 1;
        let q_bits: Vec<usize> = (0..words_per_row * 64).filter(|i| i % 3 != 1).collect();
        let (q, qc) = words(&q_bits, words_per_row * 64);
        let qs = suffix_cards(&q);
        let radius = 0.7;

        for backend in Backend::available() {
            // jaccard_within_batch ≡ per-row jaccard_within_suffix.
            let mut got: Vec<(usize, f64)> = Vec::new();
            backend.jaccard_within_batch(
                &q,
                &qs,
                &slab,
                &sufs,
                suf_stride,
                words_per_row,
                0..n_rows,
                radius,
                &mut |row, d| got.push((row, d)),
            );
            let want: Vec<(usize, f64)> = (0..n_rows)
                .filter_map(|r| {
                    let b = &slab[r * words_per_row..(r + 1) * words_per_row];
                    let sb = &sufs[r * suf_stride..(r + 1) * suf_stride];
                    Backend::Scalar
                        .jaccard_within_suffix(&q, &qs, b, sb, radius)
                        .map(|d| (r, d))
                })
                .collect();
            assert_eq!(got, want, "{backend:?}");

            // Gather form over a scattered row list (repeats allowed).
            let rows: Vec<u32> = vec![7, 2, 2, 8, 0];
            let mut got_rows: Vec<(usize, f64)> = Vec::new();
            backend.jaccard_within_rows(
                &q,
                &qs,
                &slab,
                &sufs,
                suf_stride,
                words_per_row,
                &rows,
                radius,
                &mut |k, d| got_rows.push((k, d)),
            );
            let want_rows: Vec<(usize, f64)> = rows
                .iter()
                .enumerate()
                .filter_map(|(k, &r)| {
                    let r = r as usize;
                    let b = &slab[r * words_per_row..(r + 1) * words_per_row];
                    let sb = &sufs[r * suf_stride..(r + 1) * suf_stride];
                    Backend::Scalar
                        .jaccard_within_suffix(&q, &qs, b, sb, radius)
                        .map(|d| (k, d))
                })
                .collect();
            assert_eq!(got_rows, want_rows, "{backend:?} gather");

            // Unbounded batch + gather + intersection counts.
            let mut dists = Vec::new();
            backend.jaccard_batch(&q, qc, &slab, &cards, words_per_row, 0..n_rows, &mut dists);
            let mut dists_rows = Vec::new();
            backend.jaccard_rows(&q, qc, &slab, &cards, words_per_row, &rows, &mut dists_rows);
            let mut inters = Vec::new();
            backend.intersection_count_batch(&q, &slab, words_per_row, 0..n_rows, &mut inters);
            for r in 0..n_rows {
                let b = &slab[r * words_per_row..(r + 1) * words_per_row];
                assert_eq!(
                    dists[r],
                    Backend::Scalar.jaccard(&q, qc, b, cards[r] as usize),
                    "{backend:?} row {r}"
                );
                assert_eq!(
                    inters[r] as usize,
                    Backend::Scalar.intersection_count(&q, b),
                    "{backend:?} row {r}"
                );
            }
            for (k, &r) in rows.iter().enumerate() {
                assert_eq!(dists_rows[k], dists[r as usize], "{backend:?} gather {k}");
            }
        }
    }

    #[test]
    fn batched_kernels_handle_zero_width_rows() {
        // Zero-width rows (empty universe): every row is the empty set.
        let slab: Vec<u64> = Vec::new();
        let sufs = vec![0u32; 3]; // 3 rows × stride 1 (sentinel only)
        let q: Vec<u64> = Vec::new();
        let qs = vec![0u32];
        let mut hits = Vec::new();
        for backend in Backend::available() {
            hits.clear();
            backend.jaccard_within_batch(&q, &qs, &slab, &sufs, 1, 0, 0..3, 0.5, &mut |r, d| {
                hits.push((r, d))
            });
            // Empty vs empty: distance 0 everywhere.
            assert_eq!(hits, vec![(0, 0.0), (1, 0.0), (2, 0.0)], "{backend:?}");
        }
    }
}
