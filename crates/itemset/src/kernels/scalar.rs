//! Portable scalar kernels — the reference implementations every other
//! backend must match bit for bit.
//!
//! These are plain `u64` word loops using `count_ones()`, which compiles to
//! the SWAR popcount sequence on baseline x86-64 (the `POPCNT` instruction
//! is not in the x86-64 v1 envelope) and to whatever the target offers
//! elsewhere. The [`super::Backend::Sse2`] backend re-enters these exact
//! loops inside a `#[target_feature(enable = "popcnt")]` context, so the
//! bodies here are kept `#[inline]` and free of per-target tricks.

use super::SUFFIX_STRIDE;

/// `|a ∩ b|` over word slices.
#[inline]
pub(super) fn intersection_count(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x & y).count_ones() as usize)
        .sum()
}

/// `|a ∩ b|` if it reaches `threshold`, else `None` — aborting the word loop
/// once the bits not yet scanned cannot close the gap. The running upper
/// bound is `seen ∩ + min(unseen a-bits, unseen b-bits)`, which only
/// shrinks, so the first violation is final; abort granularity therefore
/// never changes the returned value, only how early a miss is detected.
#[inline]
pub(super) fn intersection_count_at_least(
    a: &[u64],
    card_a: usize,
    b: &[u64],
    card_b: usize,
    threshold: usize,
) -> Option<usize> {
    debug_assert_eq!(a.len(), b.len());
    if card_a.min(card_b) < threshold {
        return None;
    }
    let mut inter = 0usize;
    let mut seen_a = 0usize;
    let mut seen_b = 0usize;
    for (x, y) in a.iter().zip(b) {
        inter += (x & y).count_ones() as usize;
        seen_a += x.count_ones() as usize;
        seen_b += y.count_ones() as usize;
        if inter + (card_a - seen_a).min(card_b - seen_b) < threshold {
            return None;
        }
    }
    (inter >= threshold).then_some(inter)
}

/// [`intersection_count_at_least`] with the abort bound coming from
/// precomputed suffix-cardinality tables (see [`super::suffix_cards`]): one
/// AND + one popcount per word plus one bound check per [`SUFFIX_STRIDE`]
/// words.
#[inline]
pub(super) fn intersection_count_at_least_suffix(
    a: &[u64],
    suffix_a: &[u32],
    b: &[u64],
    suffix_b: &[u32],
    threshold: usize,
) -> Option<usize> {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(suffix_a.len(), suffix_b.len());
    if (suffix_a[0].min(suffix_b[0]) as usize) < threshold {
        return None;
    }
    let blocks = suffix_a.len() - 1;
    let mut inter = 0usize;
    for k in 0..blocks {
        let start = k * SUFFIX_STRIDE;
        let end = (start + SUFFIX_STRIDE).min(a.len());
        for i in start..end {
            inter += (a[i] & b[i]).count_ones() as usize;
        }
        if inter + (suffix_a[k + 1].min(suffix_b[k + 1]) as usize) < threshold {
            return None;
        }
    }
    (inter >= threshold).then_some(inter)
}
