//! Error type shared by the itemset engine.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while building, parsing, or querying transaction data.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// An underlying I/O failure while reading or writing a dataset file.
    Io(std::io::Error),
    /// A dataset file contained a token that is not a non-negative integer.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// Human-readable description of the malformed token.
        message: String,
    },
    /// An operation that requires a non-empty database received an empty one.
    EmptyDatabase,
    /// An item identifier outside the database's dense item range was used.
    ItemOutOfRange {
        /// The offending item identifier.
        item: u32,
        /// Number of items in the database (valid ids are `0..num_items`).
        num_items: u32,
    },
    /// A relative minimum-support threshold was outside `[0, 1]`.
    InvalidThreshold(f64),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            Error::EmptyDatabase => write!(f, "operation requires a non-empty database"),
            Error::ItemOutOfRange { item, num_items } => {
                write!(
                    f,
                    "item {item} out of range (database has {num_items} items)"
                )
            }
            Error::InvalidThreshold(sigma) => {
                write!(f, "relative support threshold {sigma} not in [0, 1]")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let e = Error::Parse {
            line: 3,
            message: "bad token 'x'".into(),
        };
        assert_eq!(e.to_string(), "parse error on line 3: bad token 'x'");
        assert_eq!(
            Error::ItemOutOfRange {
                item: 9,
                num_items: 4
            }
            .to_string(),
            "item 9 out of range (database has 4 items)"
        );
        assert_eq!(
            Error::InvalidThreshold(1.5).to_string(),
            "relative support threshold 1.5 not in [0, 1]"
        );
    }

    #[test]
    fn io_error_preserves_source() {
        let inner = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = Error::from(inner);
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("gone"));
    }
}
