//! Property tests: every available kernel backend (SSE2/POPCNT, AVX2) is
//! bit-for-bit equivalent to the scalar reference on random word slabs —
//! same integer counts, same `Option` outcomes at every threshold, same
//! float distances — including ragged tail words (lengths that are not lane
//! multiples), empty sets, and the batched one-query-vs-many entry points.
//!
//! Inputs are plain tuple strategies (no `prop_flat_map`), so the compat
//! shim's shrinking reports small counterexamples on failure.

use cfp_itemset::kernels::{self, Backend};
use proptest::prelude::*;

/// Sparsifying masks: full-entropy words model dense sets; AND-ing with
/// these exercises sparse sets and the early-exit paths.
fn mask_for(level: u32) -> u64 {
    match level {
        0 => !0u64,
        1 => 0x5555_5555_5555_5555,
        2 => 0x0101_0101_0101_0101,
        _ => 0x0000_0001_0000_0001,
    }
}

fn popcount(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Single-pair kernels: counts, bounded counts, suffix-bounded counts,
    /// and radius tests agree with scalar for every available backend.
    #[test]
    fn single_pair_kernels_match_scalar(
        a_raw in proptest::collection::vec(any::<u64>(), 0..24),
        b_raw in proptest::collection::vec(any::<u64>(), 0..24),
        sparsify_a in 0u32..4,
        sparsify_b in 0u32..4,
        raw_r in 0u32..=20,
    ) {
        // Common (possibly ragged, possibly zero) length; independent
        // sparsity per side so |A| ≉ |B| cases appear.
        let n = a_raw.len().min(b_raw.len());
        let a: Vec<u64> = a_raw[..n].iter().map(|w| w & mask_for(sparsify_a)).collect();
        let b: Vec<u64> = b_raw[..n].iter().map(|w| w & mask_for(sparsify_b)).collect();
        let (ca, cb) = (popcount(&a), popcount(&b));
        let sa = kernels::suffix_cards(&a);
        let sb = kernels::suffix_cards(&b);
        let scalar = Backend::Scalar;
        let inter = scalar.intersection_count(&a, &b);
        let radius = raw_r as f64 / 20.0;

        for backend in Backend::available() {
            prop_assert_eq!(backend.intersection_count(&a, &b), inter, "{:?}", backend);
            // Thresholds bracketing every interesting boundary.
            for t in [0, 1, inter.saturating_sub(1), inter, inter + 1, ca, cb, ca.max(cb) + 1] {
                prop_assert_eq!(
                    backend.intersection_count_at_least(&a, ca, &b, cb, t),
                    scalar.intersection_count_at_least(&a, ca, &b, cb, t),
                    "{:?} t={}", backend, t
                );
                prop_assert_eq!(
                    backend.intersection_count_at_least_suffix(&a, &sa, &b, &sb, t),
                    scalar.intersection_count_at_least_suffix(&a, &sa, &b, &sb, t),
                    "{:?} suffix t={}", backend, t
                );
            }
            prop_assert_eq!(
                backend.jaccard(&a, ca, &b, cb).to_bits(),
                scalar.jaccard(&a, ca, &b, cb).to_bits(),
                "{:?}", backend
            );
            prop_assert_eq!(
                backend.jaccard_within(&a, ca, &b, cb, radius).map(f64::to_bits),
                scalar.jaccard_within(&a, ca, &b, cb, radius).map(f64::to_bits),
                "{:?} r={}", backend, radius
            );
            prop_assert_eq!(
                backend.jaccard_within_suffix(&a, &sa, &b, &sb, radius).map(f64::to_bits),
                scalar.jaccard_within_suffix(&a, &sa, &b, &sb, radius).map(f64::to_bits),
                "{:?} suffix r={}", backend, radius
            );
        }
    }

    /// Batched kernels: one query streamed over a random slab returns
    /// exactly what per-pair scalar calls return, for every backend, on
    /// both the contiguous and the gather (row-list) forms.
    #[test]
    fn batched_kernels_match_scalar(
        slab_raw in proptest::collection::vec(any::<u64>(), 0..72),
        q_raw in proptest::collection::vec(any::<u64>(), 0..9),
        words_per_row in 0usize..9,
        sparsify in 0u32..4,
        raw_r in 0u32..=20,
    ) {
        // Cut the raw words into whole rows; the query is padded/truncated
        // to the row width. words_per_row = 0 ⇒ every row is empty.
        let n_rows = slab_raw.len().checked_div(words_per_row).unwrap_or(3);
        let slab: Vec<u64> = slab_raw[..n_rows * words_per_row]
            .iter()
            .map(|w| w & mask_for(sparsify))
            .collect();
        let mut q = q_raw;
        q.resize(words_per_row, 0);
        let qc = popcount(&q);
        let qs = kernels::suffix_cards(&q);
        let suf_stride = words_per_row.div_ceil(kernels::SUFFIX_STRIDE) + 1;
        let mut sufs = Vec::new();
        let mut cards = Vec::new();
        for r in 0..n_rows {
            let row = &slab[r * words_per_row..(r + 1) * words_per_row];
            kernels::suffix_cards_into(row, &mut sufs);
            cards.push(popcount(row) as u32);
        }
        let radius = raw_r as f64 / 20.0;
        let scalar = Backend::Scalar;

        // Scalar per-pair reference.
        let want_within: Vec<(usize, u64)> = (0..n_rows)
            .filter_map(|r| {
                let row = &slab[r * words_per_row..(r + 1) * words_per_row];
                let srow = &sufs[r * suf_stride..(r + 1) * suf_stride];
                scalar
                    .jaccard_within_suffix(&q, &qs, row, srow, radius)
                    .map(|d| (r, d.to_bits()))
            })
            .collect();
        let want_dists: Vec<u64> = (0..n_rows)
            .map(|r| {
                let row = &slab[r * words_per_row..(r + 1) * words_per_row];
                scalar.jaccard(&q, qc, row, cards[r] as usize).to_bits()
            })
            .collect();
        let want_inters: Vec<u32> = (0..n_rows)
            .map(|r| {
                let row = &slab[r * words_per_row..(r + 1) * words_per_row];
                scalar.intersection_count(&q, row) as u32
            })
            .collect();
        // A scattered row list with a repeat, when rows exist.
        let row_list: Vec<u32> = (0..n_rows as u32).rev().chain(0..n_rows.min(1) as u32).collect();

        for backend in Backend::available() {
            let mut got = Vec::new();
            backend.jaccard_within_batch(
                &q, &qs, &slab, &sufs, suf_stride, words_per_row, 0..n_rows, radius,
                &mut |r, d| got.push((r, d.to_bits())),
            );
            prop_assert_eq!(&got, &want_within, "{:?} within_batch", backend);

            let mut got_rows = Vec::new();
            backend.jaccard_within_rows(
                &q, &qs, &slab, &sufs, suf_stride, words_per_row, &row_list, radius,
                &mut |k, d| got_rows.push((k, d.to_bits())),
            );
            let want_rows: Vec<(usize, u64)> = row_list
                .iter()
                .enumerate()
                .filter_map(|(k, &r)| {
                    want_within
                        .iter()
                        .find(|&&(wr, _)| wr == r as usize)
                        .map(|&(_, bits)| (k, bits))
                })
                .collect();
            prop_assert_eq!(&got_rows, &want_rows, "{:?} within_rows", backend);

            let mut dists = Vec::new();
            backend.jaccard_batch(&q, qc, &slab, &cards, words_per_row, 0..n_rows, &mut dists);
            let got_bits: Vec<u64> = dists.iter().map(|d| d.to_bits()).collect();
            prop_assert_eq!(&got_bits, &want_dists, "{:?} jaccard_batch", backend);

            let mut dists_rows = Vec::new();
            backend.jaccard_rows(&q, qc, &slab, &cards, words_per_row, &row_list, &mut dists_rows);
            let got_row_bits: Vec<u64> = dists_rows.iter().map(|d| d.to_bits()).collect();
            let want_row_bits: Vec<u64> = row_list
                .iter()
                .map(|&r| want_dists[r as usize])
                .collect();
            prop_assert_eq!(&got_row_bits, &want_row_bits, "{:?} jaccard_rows", backend);

            let mut inters = Vec::new();
            backend.intersection_count_batch(&q, &slab, words_per_row, 0..n_rows, &mut inters);
            prop_assert_eq!(&inters, &want_inters, "{:?} intersection_count_batch", backend);
        }
    }
}
