//! Itemset edit distance (Definition 8).

use cfp_itemset::Itemset;

/// `Edit(α, β) = |α ∪ β| − |α ∩ β|` — the number of single-item insertions
/// and deletions transforming α into β (symmetric-difference cardinality).
#[inline]
pub fn edit_distance(a: &Itemset, b: &Itemset) -> usize {
    a.union_count(b) - a.intersection_count(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn set(items: &[u32]) -> Itemset {
        Itemset::from_items(items)
    }

    #[test]
    fn paper_example() {
        // "the edit distance between itemsets (abcd) and (acde) is 2."
        let abcd = set(&[0, 1, 2, 3]);
        let acde = set(&[0, 2, 3, 4]);
        assert_eq!(edit_distance(&abcd, &acde), 2);
    }

    #[test]
    fn identity_and_disjoint() {
        let a = set(&[1, 2, 3]);
        let b = set(&[7, 8]);
        assert_eq!(edit_distance(&a, &a), 0);
        assert_eq!(edit_distance(&a, &b), 5);
        assert_eq!(edit_distance(&a, &Itemset::empty()), 3);
    }

    fn arb_set() -> impl Strategy<Value = Itemset> {
        proptest::collection::vec(0u32..30, 0..16).prop_map(|v| Itemset::from_items(&v))
    }

    proptest! {
        /// Edit distance is a metric: identity, symmetry, triangle.
        #[test]
        fn is_a_metric(a in arb_set(), b in arb_set(), c in arb_set()) {
            prop_assert_eq!(edit_distance(&a, &a), 0);
            prop_assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
            prop_assert!(
                edit_distance(&a, &c) <= edit_distance(&a, &b) + edit_distance(&b, &c)
            );
            // Separation: zero distance ⇒ equal sets.
            if edit_distance(&a, &b) == 0 {
                prop_assert_eq!(&a, &b);
            }
        }

        /// Edit distance equals the size of the symmetric difference.
        #[test]
        fn equals_symmetric_difference(a in arb_set(), b in arb_set()) {
            let sym = a.difference(&b).len() + b.difference(&a).len();
            prop_assert_eq!(edit_distance(&a, &b), sym);
        }
    }
}
