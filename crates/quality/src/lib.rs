//! Quality-evaluation model for approximate colossal-pattern mining
//! (paper §5).
//!
//! When the complete mining result is too large to compute, recall/precision
//! are meaningless; the paper instead measures how *representative* a result
//! set P is of the complete set Q:
//!
//! * [`edit_distance`] — `Edit(α, β) = |α ∪ β| − |α ∩ β|` (Definition 8);
//! * [`approximate`] — the clustering model (Definition 9): each β ∈ Q joins
//!   its nearest center α ∈ P;
//! * [`approximation_error`] — `Δ(AP_Q)` (Definition 10): the average over
//!   clusters of the farthest member's relative edit distance;
//! * [`uniform_sampling_error`] — the paper's Figure 7 comparator: K
//!   patterns drawn uniformly from Q, scored with the same Δ;
//! * [`error_by_min_size`] — the Figure 8 sweep: Δ restricted to patterns of
//!   size ≥ x for a series of x;
//! * [`compare_pattern_sets`] — the §5 closing remark generalized: a
//!   symmetric two-way comparison (both directional Δs plus the Hausdorff
//!   distance of the edit metric) for comparing any two mining results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod approx;
mod compare;
mod edit;
mod sampling;
mod sweep;

pub use approx::{approximate, approximation_error, Approximation};
pub use compare::{compare_pattern_sets, PatternSetComparison};
pub use edit::edit_distance;
pub use sampling::{uniform_sample, uniform_sampling_error};
pub use sweep::{error_by_min_size, SizeSweepPoint};
