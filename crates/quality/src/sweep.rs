//! Size-threshold sweeps (the paper's Figure 8 presentation).
//!
//! Figure 8 plots, for each size threshold x, the approximation error of the
//! mining result against the complete set restricted to patterns of size
//! ≥ x. Both sides are restricted: the paper reads the plot as "when K=100,
//! Pattern-Fusion returns 80 of the 98 closed patterns of size ≥ 42", i.e.
//! the result set is also viewed through the ≥ x lens.

use crate::approx::approximation_error;
use cfp_itemset::Itemset;

/// One point of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SizeSweepPoint {
    /// The size threshold x.
    pub min_size: usize,
    /// Patterns of size ≥ x in the complete set Q.
    pub complete_count: usize,
    /// Patterns of size ≥ x in the mining result P.
    pub result_count: usize,
    /// Δ(AP_Q) over the restricted sets; `None` when the restricted result
    /// set is empty (nothing of that size was mined).
    pub error: Option<f64>,
}

/// Computes Δ(AP_Q) for every threshold in `min_sizes`, restricting both
/// the result `p` and the complete set `q` to patterns of size ≥ x.
pub fn error_by_min_size(p: &[Itemset], q: &[Itemset], min_sizes: &[usize]) -> Vec<SizeSweepPoint> {
    min_sizes
        .iter()
        .map(|&x| {
            let pr: Vec<Itemset> = p.iter().filter(|s| s.len() >= x).cloned().collect();
            let qr: Vec<Itemset> = q.iter().filter(|s| s.len() >= x).cloned().collect();
            SizeSweepPoint {
                min_size: x,
                complete_count: qr.len(),
                result_count: pr.len(),
                error: approximation_error(&pr, &qr),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[u32]) -> Itemset {
        Itemset::from_items(items)
    }

    #[test]
    fn sweep_counts_and_errors() {
        let q = vec![
            set(&[0, 1, 2, 3, 4]),
            set(&[0, 1, 2, 3]),
            set(&[0, 1]),
            set(&[5, 6, 7, 8, 9]),
        ];
        // Result holds one of the two big patterns exactly.
        let p = vec![set(&[0, 1, 2, 3, 4]), set(&[9])];
        let sweep = error_by_min_size(&p, &q, &[1, 4, 5, 6]);
        assert_eq!(sweep[0].complete_count, 4);
        assert_eq!(sweep[0].result_count, 2);

        // x = 5: Q has two size-5 patterns, P has one of them; the missing
        // one (56789) is at edit distance 10 from (01234) → r = 10/5 = 2.
        let at5 = &sweep[2];
        assert_eq!(at5.complete_count, 2);
        assert_eq!(at5.result_count, 1);
        assert!((at5.error.unwrap() - 2.0).abs() < 1e-12);

        // x = 6: nothing qualifies on either side: error defined, zero Q.
        let at6 = &sweep[3];
        assert_eq!(at6.complete_count, 0);
        assert_eq!(at6.result_count, 0);
        assert!(at6.error.is_none(), "no centers → undefined");
    }

    #[test]
    fn perfect_result_scores_zero_everywhere() {
        let q = vec![set(&[0, 1, 2]), set(&[3, 4, 5, 6])];
        let sweep = error_by_min_size(&q, &q, &[1, 3, 4]);
        for pt in &sweep {
            if pt.result_count > 0 {
                assert_eq!(pt.error, Some(0.0), "x = {}", pt.min_size);
            }
        }
    }
}
