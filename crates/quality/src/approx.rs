//! Pattern-set approximation (Definitions 9 and 10).

use crate::edit::edit_distance;
use cfp_itemset::Itemset;

/// The approximation `AP_Q` of a result set P with respect to a complete set
/// Q: a nearest-center partition of Q, with per-cluster and overall errors.
#[derive(Debug, Clone)]
pub struct Approximation {
    /// `clusters[i]` holds the indices of Q-patterns assigned to center
    /// `P[i]` (ties go to the earliest center, making the partition
    /// deterministic).
    pub clusters: Vec<Vec<usize>>,
    /// `r_i = max_{β ∈ Q_i} Edit(β, α_i) / |α_i|` (0 for empty clusters).
    pub cluster_errors: Vec<f64>,
    /// `Δ(AP_Q) = (Σ_i r_i) / m`.
    pub error: f64,
}

/// Builds the nearest-center partition of `q` around the centers `p`
/// (Definition 9) and computes the approximation error (Definition 10).
///
/// Returns `None` when `p` is empty (no centers — the approximation is
/// undefined) . An empty `q` yields error 0: there is nothing to represent.
pub fn approximate(p: &[Itemset], q: &[Itemset]) -> Option<Approximation> {
    if p.is_empty() {
        return None;
    }
    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); p.len()];
    for (qi, beta) in q.iter().enumerate() {
        let mut best = 0usize;
        let mut best_d = usize::MAX;
        for (pi, alpha) in p.iter().enumerate() {
            let d = edit_distance(beta, alpha);
            if d < best_d {
                best_d = d;
                best = pi;
            }
        }
        clusters[best].push(qi);
    }
    let cluster_errors: Vec<f64> = clusters
        .iter()
        .enumerate()
        .map(|(pi, members)| {
            let denom = p[pi].len().max(1) as f64;
            members
                .iter()
                .map(|&qi| edit_distance(&q[qi], &p[pi]) as f64 / denom)
                .fold(0.0, f64::max)
        })
        .collect();
    let error = cluster_errors.iter().sum::<f64>() / p.len() as f64;
    Some(Approximation {
        clusters,
        cluster_errors,
        error,
    })
}

/// Shorthand for [`approximate`]`.map(|a| a.error)`.
pub fn approximation_error(p: &[Itemset], q: &[Itemset]) -> Option<f64> {
    approximate(p, q).map(|a| a.error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn set(items: &[u32]) -> Itemset {
        Itemset::from_items(items)
    }

    /// The paper's Example 1 (Figure 5): Δ(AP_Q) = (2/5 + 1/3)/2 = 11/30.
    #[test]
    fn paper_example_1() {
        // a=0 b=1 c=2 d=3 e=4 f=5, x=23 y=24 z=25.
        let q1 = set(&[0, 1, 2, 3, 5]); // abcdf
        let q2 = set(&[0, 2, 3, 4]); // acde
        let q3 = set(&[0, 1, 2, 3]); // abcd
        let q4 = set(&[0, 1, 2, 3, 4]); // abcde = P1
        let q5 = set(&[23, 24]); // xy
        let q6 = set(&[23, 24, 25]); // xyz = P2
        let q7 = set(&[24, 25]); // yz
        let p = vec![q4.clone(), q6.clone()];
        let q = vec![q1, q2, q3, q4, q5, q6, q7];
        let ap = approximate(&p, &q).unwrap();
        assert_eq!(ap.clusters[0], vec![0, 1, 2, 3], "P1's cluster");
        assert_eq!(ap.clusters[1], vec![4, 5, 6], "P2's cluster");
        assert!((ap.cluster_errors[0] - 2.0 / 5.0).abs() < 1e-12);
        assert!((ap.cluster_errors[1] - 1.0 / 3.0).abs() < 1e-12);
        assert!((ap.error - 11.0 / 30.0).abs() < 1e-12, "Δ = {}", ap.error);
    }

    #[test]
    fn perfect_representation_has_zero_error() {
        let q: Vec<Itemset> = vec![set(&[0, 1]), set(&[2, 3]), set(&[4])];
        let err = approximation_error(&q, &q).unwrap();
        assert_eq!(err, 0.0);
    }

    #[test]
    fn empty_centers_are_undefined() {
        assert!(approximate(&[], &[set(&[0])]).is_none());
    }

    #[test]
    fn empty_q_is_perfectly_represented() {
        let p = vec![set(&[0, 1])];
        let ap = approximate(&p, &[]).unwrap();
        assert_eq!(ap.error, 0.0);
        assert!(ap.clusters[0].is_empty());
    }

    #[test]
    fn ties_go_to_the_earliest_center() {
        let p = vec![set(&[0]), set(&[1])];
        let q = vec![set(&[0, 1])]; // distance 1 to both centers
        let ap = approximate(&p, &q).unwrap();
        assert_eq!(ap.clusters[0], vec![0]);
        assert!(ap.clusters[1].is_empty());
    }

    fn arb_sets(max: usize) -> impl Strategy<Value = Vec<Itemset>> {
        proptest::collection::vec(
            proptest::collection::vec(0u32..20, 1..8).prop_map(|v| Itemset::from_items(&v)),
            1..max,
        )
    }

    proptest! {
        /// Δ is non-negative, and zero whenever P ⊇ Q.
        #[test]
        fn error_nonnegative_and_zero_on_superset(q in arb_sets(8)) {
            let err = approximation_error(&q, &q).unwrap();
            prop_assert!(err.abs() < 1e-12);
            let mut p = q.clone();
            p.push(Itemset::from_items(&[19]));
            let err2 = approximation_error(&p, &q).unwrap();
            prop_assert!(err2 >= 0.0);
        }

        /// Adding the farthest Q-member to P never increases the error
        /// beyond the previous value (more centers ⇒ no worse coverage in
        /// the max-per-cluster sense is not guaranteed in general, but Δ of
        /// P = Q is always 0 ≤ Δ of any P) — here we simply check stability:
        /// every Q-pattern is assigned to exactly one cluster.
        #[test]
        fn partition_covers_q_exactly_once(p in arb_sets(5), q in arb_sets(10)) {
            let ap = approximate(&p, &q).unwrap();
            let mut count = 0usize;
            for c in &ap.clusters {
                count += c.len();
            }
            prop_assert_eq!(count, q.len());
        }
    }
}
