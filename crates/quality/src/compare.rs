//! General pattern-set comparison (the paper's §5 closing remark: the
//! evaluation model "provides a general mechanism to compare the difference
//! between two sets of frequent patterns").
//!
//! Δ(AP_Q) is asymmetric — it measures how well P *represents* Q. This
//! module packages both directions plus the Hausdorff distance of the edit
//! metric, giving a symmetric dissimilarity usable to compare any two mining
//! results (e.g. two Pattern-Fusion runs, or fusion vs sampling).

use crate::approx::approximation_error;
use crate::edit::edit_distance;
use cfp_itemset::Itemset;

/// A two-way comparison of pattern sets.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternSetComparison {
    /// Δ(AP_Q): how well P represents Q (None if P is empty).
    pub delta_p_to_q: Option<f64>,
    /// Δ(AQ_P): how well Q represents P (None if Q is empty).
    pub delta_q_to_p: Option<f64>,
    /// Hausdorff distance of the edit metric: the largest edit distance from
    /// any pattern in either set to its nearest neighbour in the other
    /// (None if either set is empty).
    pub hausdorff: Option<usize>,
}

impl PatternSetComparison {
    /// The symmetric Δ: the maximum of the two directional errors (a
    /// conservative dissimilarity), when both are defined.
    pub fn symmetric_delta(&self) -> Option<f64> {
        match (self.delta_p_to_q, self.delta_q_to_p) {
            (Some(a), Some(b)) => Some(a.max(b)),
            _ => None,
        }
    }
}

/// Directed Hausdorff: `max_{a∈from} min_{b∈to} Edit(a, b)`.
fn directed_hausdorff(from: &[Itemset], to: &[Itemset]) -> Option<usize> {
    if from.is_empty() || to.is_empty() {
        return None;
    }
    from.iter()
        .map(|a| to.iter().map(|b| edit_distance(a, b)).min().unwrap())
        .max()
}

/// Compares two pattern sets in both directions.
pub fn compare_pattern_sets(p: &[Itemset], q: &[Itemset]) -> PatternSetComparison {
    let h = match (directed_hausdorff(p, q), directed_hausdorff(q, p)) {
        (Some(a), Some(b)) => Some(a.max(b)),
        _ => None,
    };
    PatternSetComparison {
        delta_p_to_q: approximation_error(p, q),
        delta_q_to_p: approximation_error(q, p),
        hausdorff: h,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn set(items: &[u32]) -> Itemset {
        Itemset::from_items(items)
    }

    #[test]
    fn identical_sets_have_zero_everything() {
        let p = vec![set(&[0, 1, 2]), set(&[5, 6])];
        let c = compare_pattern_sets(&p, &p);
        assert_eq!(c.delta_p_to_q, Some(0.0));
        assert_eq!(c.delta_q_to_p, Some(0.0));
        assert_eq!(c.hausdorff, Some(0));
        assert_eq!(c.symmetric_delta(), Some(0.0));
    }

    #[test]
    fn asymmetry_shows_in_directional_deltas() {
        // P = one center covering Q poorly; Q = rich set covering P well.
        let p = vec![set(&[0, 1, 2, 3])];
        let q = vec![set(&[0, 1, 2, 3]), set(&[10, 11, 12])];
        let c = compare_pattern_sets(&p, &q);
        // P→Q: the far (10 11 12) maps to P's only center: r = 7/4.
        assert!(c.delta_p_to_q.unwrap() > 1.0);
        // Q→P: P's pattern is in Q: perfect representation.
        assert_eq!(c.delta_q_to_p, Some(0.0));
        assert_eq!(c.hausdorff, Some(7));
        assert_eq!(c.symmetric_delta(), c.delta_p_to_q);
    }

    #[test]
    fn empty_sides_yield_none() {
        let p = vec![set(&[0])];
        let c = compare_pattern_sets(&p, &[]);
        assert_eq!(c.delta_p_to_q, Some(0.0)); // empty Q is trivially covered
        assert_eq!(c.delta_q_to_p, None); // no centers
        assert_eq!(c.hausdorff, None);
        assert_eq!(c.symmetric_delta(), None);
    }

    fn arb_sets() -> impl Strategy<Value = Vec<Itemset>> {
        proptest::collection::vec(
            proptest::collection::vec(0u32..16, 1..6).prop_map(|v| Itemset::from_items(&v)),
            1..8,
        )
    }

    proptest! {
        /// Hausdorff is symmetric and zero iff the sets are equal as sets.
        #[test]
        fn hausdorff_symmetry(p in arb_sets(), q in arb_sets()) {
            let c1 = compare_pattern_sets(&p, &q);
            let c2 = compare_pattern_sets(&q, &p);
            prop_assert_eq!(c1.hausdorff, c2.hausdorff);
            prop_assert_eq!(c1.delta_p_to_q, c2.delta_q_to_p);
            if c1.hausdorff == Some(0) {
                let ps: std::collections::HashSet<_> = p.iter().collect();
                let qs: std::collections::HashSet<_> = q.iter().collect();
                prop_assert_eq!(ps, qs);
            }
        }

        /// Hausdorff upper-bounds both directed max-min distances and the
        /// unnormalized cluster radii.
        #[test]
        fn hausdorff_dominates(p in arb_sets(), q in arb_sets()) {
            let c = compare_pattern_sets(&p, &q);
            let h = c.hausdorff.unwrap();
            for a in &p {
                let d = q.iter().map(|b| edit_distance(a, b)).min().unwrap();
                prop_assert!(d <= h);
            }
            for b in &q {
                let d = p.iter().map(|a| edit_distance(a, b)).min().unwrap();
                prop_assert!(d <= h);
            }
        }
    }
}
