//! The uniform-sampling comparator (Figure 7's second curve).
//!
//! The paper compares Pattern-Fusion's approximation error against "a
//! uniform sampling approach, which randomly picks up K patterns from the
//! complete answer set" — the strongest baseline available when the complete
//! set is known. Matching its error means Pattern-Fusion does not get stuck
//! in a corner of the pattern space.

use crate::approx::approximation_error;
use cfp_itemset::Itemset;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Draws `k` patterns uniformly without replacement from `q`
/// (deterministic given `seed`). Returns all of `q` when `k ≥ |q|`.
pub fn uniform_sample(q: &[Itemset], k: usize, seed: u64) -> Vec<Itemset> {
    if k >= q.len() {
        return q.to_vec();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    rand::seq::index::sample(&mut rng, q.len(), k)
        .into_iter()
        .map(|i| q[i].clone())
        .collect()
}

/// Δ(AP_Q) of a uniform K-sample of Q, averaged over `trials` independent
/// draws (one draw is noisy; the paper plots single draws, we expose the
/// trial count).
///
/// Returns `None` if `q` is empty or `k == 0`.
pub fn uniform_sampling_error(q: &[Itemset], k: usize, trials: usize, seed: u64) -> Option<f64> {
    if q.is_empty() || k == 0 || trials == 0 {
        return None;
    }
    let mut total = 0.0;
    for t in 0..trials {
        let p = uniform_sample(q, k, seed.wrapping_add(t as u64));
        total += approximation_error(&p, q)?;
    }
    Some(total / trials as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sets(n: usize) -> Vec<Itemset> {
        (0..n)
            .map(|i| Itemset::from_items(&[i as u32, (i + 1) as u32, 50]))
            .collect()
    }

    #[test]
    fn sample_is_subset_without_replacement() {
        let q = sets(20);
        let s = uniform_sample(&q, 8, 42);
        assert_eq!(s.len(), 8);
        let mut seen = std::collections::HashSet::new();
        for p in &s {
            assert!(q.contains(p));
            assert!(seen.insert(p.clone()), "duplicate draw");
        }
    }

    #[test]
    fn oversized_k_returns_everything() {
        let q = sets(5);
        assert_eq!(uniform_sample(&q, 10, 1).len(), 5);
    }

    #[test]
    fn full_sample_has_zero_error() {
        let q = sets(6);
        let err = uniform_sampling_error(&q, 6, 3, 7).unwrap();
        assert_eq!(err, 0.0);
    }

    #[test]
    fn error_decreases_with_k_on_average() {
        // More centers → each Q-pattern is closer to some center.
        let q: Vec<Itemset> = (0..40u32)
            .map(|i| Itemset::from_items(&[i, i + 1, i + 2, 100]))
            .collect();
        let e_small = uniform_sampling_error(&q, 2, 16, 9).unwrap();
        let e_big = uniform_sampling_error(&q, 30, 16, 9).unwrap();
        assert!(
            e_big < e_small,
            "expected error to fall with K: {e_big} vs {e_small}"
        );
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(uniform_sampling_error(&[], 3, 2, 1).is_none());
        assert!(uniform_sampling_error(&sets(3), 0, 2, 1).is_none());
        assert!(uniform_sampling_error(&sets(3), 2, 0, 1).is_none());
    }

    #[test]
    fn determinism_per_seed() {
        let q = sets(15);
        assert_eq!(uniform_sample(&q, 5, 3), uniform_sample(&q, 5, 3));
        assert_eq!(
            uniform_sampling_error(&q, 5, 4, 11),
            uniform_sampling_error(&q, 5, 4, 11)
        );
    }
}
