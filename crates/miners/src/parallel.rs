//! Deterministic dynamic work distribution.
//!
//! The mining pipeline's work items are wildly uneven: one seed's ball can
//! hold half the pool while another's is empty, and one item's DFS subtree
//! can dwarf its siblings'. A fixed-chunk `std::thread::scope` split
//! therefore idles most workers on stragglers. This module provides work
//! stealing off a shared queue instead: workers claim the next unclaimed
//! task index from an atomic counter, so a worker that finishes early
//! immediately takes over work that would otherwise queue behind a long
//! task on a static schedule.
//!
//! The queue lives in `cfp_miners` (the lowest crate that schedules work)
//! and is shared upward: the parallel initial-pool miner
//! ([`crate::initial_pool_slab`]) distributes per-item DFS subtrees over it,
//! and `cfp_core` re-exports it as `cfp_core::parallel` for the fusion
//! engine's ball scans, per-seed fusions, shard runs, and pivot-table
//! builds.
//!
//! Determinism: results are keyed by task index, not by completion order, so
//! the output is identical for any thread count — the scheduler only decides
//! *who* runs a task, never *what* the task computes (per-task RNGs are
//! derived from the task index upstream).
//!
//! The persistent ball index keeps this contract under tombstoning: scan
//! tasks are cut by `BallQuery::segments` (in `cfp_core::ball`), a pure
//! function of index state (live prefix sums), so the task list — and
//! therefore every task's identity and output slot — is the same at any
//! thread count even when segments hop dead arena slots. Workers that draw
//! tombstone-dense segments simply finish sooner and steal the next index.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `work(0..n_tasks)` across `threads` workers that steal task indices
/// from a shared queue, returning results in task order.
///
/// With `threads <= 1` (or fewer than two tasks) everything runs inline on
/// the caller's thread with no synchronization.
pub fn run_tasks<T, F>(n_tasks: usize, threads: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n_tasks <= 1 {
        return (0..n_tasks).map(work).collect();
    }
    let next = AtomicUsize::new(0);
    let workers = threads.min(n_tasks);
    let mut slots: Vec<Option<T>> = (0..n_tasks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let work = &work;
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_tasks {
                            break;
                        }
                        done.push((i, work(i)));
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            for (i, out) in h.join().expect("worker panicked") {
                slots[i] = Some(out);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every task index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_task_order_for_any_thread_count() {
        let work = |i: usize| i * i;
        let want: Vec<usize> = (0..97).map(work).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(run_tasks(97, threads, work), want, "threads={threads}");
        }
    }

    #[test]
    fn uneven_tasks_all_run_exactly_once() {
        let ran = AtomicU64::new(0);
        let out = run_tasks(40, 4, |i| {
            ran.fetch_add(1, Ordering::Relaxed);
            if i % 7 == 0 {
                // Simulate stragglers.
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(ran.load(Ordering::Relaxed), 40);
        assert_eq!(out, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn zero_and_one_tasks() {
        assert_eq!(run_tasks(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(run_tasks(1, 8, |i| i + 1), vec![1]);
    }
}
