//! Maximal-pattern mining (LCM_maximal / MAFIA behavioural stand-in).
//!
//! Depth-first set enumeration with two classic accelerations:
//!
//! * **fail-first ordering** — items are explored in ascending global
//!   support, shrinking tid-sets as early as possible;
//! * **look-ahead (HUT) pruning** — if a node's pattern united with *all* of
//!   its frequent tail extensions is itself frequent, that union is the only
//!   maximal candidate in the subtree, so the subtree is skipped wholesale.
//!
//! A candidate is emitted only after the *full* maximality check (no single
//! frequent extension over the whole item universe), which both guarantees
//! correctness and deduplicates look-ahead emissions.
//!
//! On `Diagn` this miner exhibits exactly the paper's Figure 6 behaviour: the
//! number of maximal patterns is `C(n, n/2)` and the run time grows
//! exponentially, while Pattern-Fusion's stays flat.

use crate::budget::{Budget, Outcome};
use crate::types::MinedPattern;
use cfp_itemset::{Itemset, TidSet, TransactionDb, VerticalIndex};

/// Mines all maximal frequent patterns.
pub fn maximal(db: &TransactionDb, min_count: usize, budget: &Budget) -> Outcome {
    let min_count = min_count.max(1);
    let index = VerticalIndex::new(db);
    // Fail-first: ascending support, tie-broken by item id.
    let mut order: Vec<u32> = (0..db.num_items())
        .filter(|&i| index.item_tidset(i).count() >= min_count)
        .collect();
    order.sort_by_key(|&i| (index.item_tidset(i).count(), i));

    let mut ctx = Ctx {
        min_count,
        budget,
        index: &index,
        results: Vec::new(),
        nodes: 0,
        capped: false,
    };
    let root_tail: Vec<u32> = order;
    let root_tids = TidSet::full(db.len());
    if db.len() >= min_count && !root_tail.is_empty() {
        descend(&Itemset::empty(), &root_tids, &root_tail, &mut ctx);
    }
    if ctx.capped {
        Outcome::capped(ctx.results, ctx.nodes)
    } else {
        Outcome::complete(ctx.results, ctx.nodes)
    }
}

struct Ctx<'a> {
    min_count: usize,
    budget: &'a Budget,
    index: &'a VerticalIndex,
    results: Vec<MinedPattern>,
    nodes: u64,
    capped: bool,
}

impl Ctx<'_> {
    /// Full maximality check: no item outside `p` extends it frequently.
    fn is_maximal(&self, p: &Itemset, tids: &TidSet) -> bool {
        for item in 0..self.index.num_items() {
            if p.contains(item) {
                continue;
            }
            if self.index.extended_support(tids, item) >= self.min_count {
                return false;
            }
        }
        true
    }

    fn emit_if_maximal(&mut self, p: Itemset, tids: &TidSet) {
        if !p.is_empty() && self.is_maximal(&p, tids) {
            let support = tids.count();
            self.results.push(MinedPattern::new(p, support));
        }
    }
}

fn descend(p: &Itemset, tids: &TidSet, tail: &[u32], ctx: &mut Ctx<'_>) {
    ctx.nodes += 1;
    if ctx.nodes.is_multiple_of(256) && ctx.budget.exhausted(ctx.results.len(), ctx.nodes) {
        ctx.capped = true;
        return;
    }

    // Frequent tail extensions with their tid-sets.
    let exts: Vec<(u32, TidSet)> = tail
        .iter()
        .filter_map(|&item| {
            let sub = ctx.index.extend_tidset(tids, item);
            (sub.count() >= ctx.min_count).then_some((item, sub))
        })
        .collect();

    if exts.is_empty() {
        ctx.emit_if_maximal(p.clone(), tids);
        return;
    }

    // Look-ahead: p ∪ all extensions frequent ⇒ unique candidate, prune.
    let mut hut = tids.clone();
    for (_, sub) in &exts {
        hut.intersect_with(sub);
    }
    if hut.count() >= ctx.min_count {
        let mut full = p.clone();
        for (item, _) in &exts {
            full = full.with_item(*item);
        }
        ctx.emit_if_maximal(full, &hut);
        return;
    }

    for (i, (item, sub)) in exts.iter().enumerate() {
        let child = p.with_item(*item);
        let child_tail: Vec<u32> = exts[i + 1..].iter().map(|&(it, _)| it).collect();
        descend(&child, sub, &child_tail, ctx);
        if ctx.capped {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{arb_small_db, assert_same_patterns, brute_maximal};
    use crate::types::sort_canonical;
    use proptest::prelude::*;

    fn fig3_db() -> TransactionDb {
        TransactionDb::from_dense(vec![
            Itemset::from_items(&[0, 1, 3]),
            Itemset::from_items(&[1, 2, 4]),
            Itemset::from_items(&[0, 2, 4]),
            Itemset::from_items(&[0, 1, 2, 3, 4]),
        ])
    }

    #[test]
    fn matches_brute_force_maximal_sets() {
        let db = fig3_db();
        for min in 1..=4 {
            let mut got = maximal(&db, min, &Budget::unlimited()).patterns;
            sort_canonical(&mut got);
            let want = brute_maximal(&db, min);
            assert_same_patterns(&format!("maximal@{min}"), &got, &want);
        }
    }

    #[test]
    fn diag_maximal_count_is_binomial() {
        // Diagn at support n−k: maximal patterns are exactly the k-subsets,
        // so their number is C(n, k). n=10, min support 7 → k=3 → 120.
        let db = cfp_datagen::diag(10);
        let out = maximal(&db, 7, &Budget::unlimited());
        assert!(out.complete);
        assert_eq!(out.patterns.len(), 120);
        for p in &out.patterns {
            assert_eq!(p.items.len(), 3);
            assert_eq!(p.support, 7);
        }
    }

    #[test]
    fn diag_plus_finds_the_colossal_pattern() {
        // The intro's construction: Diag12 + 6 rows of (13..=18); at support
        // 6 the extra block (size 6, support 6) must be reported maximal.
        let db = cfp_datagen::diag_plus(12, 6, 6);
        let out = maximal(&db, 6, &Budget::unlimited());
        assert!(out.complete);
        let colossal: Vec<u32> = (13..=18)
            .map(|i| db.item_map().internal(i).unwrap())
            .collect();
        let target = Itemset::from_items(&colossal);
        assert!(
            out.patterns.iter().any(|p| p.items == target),
            "colossal block missing from maximal set"
        );
    }

    #[test]
    fn no_pattern_subsumes_another() {
        let db = cfp_datagen::quest(&cfp_datagen::QuestConfig {
            n_transactions: 250,
            n_items: 30,
            ..Default::default()
        });
        let out = maximal(&db, 5, &Budget::unlimited());
        for (i, p) in out.patterns.iter().enumerate() {
            for q in &out.patterns[..i] {
                assert!(
                    !p.items.is_proper_subset_of(&q.items)
                        && !q.items.is_proper_subset_of(&p.items),
                    "{p:?} vs {q:?}"
                );
            }
        }
    }

    #[test]
    fn budget_caps_diag_explosion() {
        let db = cfp_datagen::diag(24);
        let out = maximal(&db, 12, &Budget::unlimited().with_max_nodes(20_000));
        assert!(!out.complete, "C(24,12) ≈ 2.7M must trip the cap");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// The maximal miner equals brute force on random databases.
        #[test]
        fn matches_brute_force_on_random_dbs((db, min) in arb_small_db()) {
            let mut got = maximal(&db, min, &Budget::unlimited()).patterns;
            sort_canonical(&mut got);
            let want = brute_maximal(&db, min);
            prop_assert_eq!(got.len(), want.len(), "count mismatch");
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(&g.items, &w.items);
                prop_assert_eq!(g.support, w.support);
            }
        }
    }
}
