//! Eclat: depth-first vertical frequent-itemset mining.
//!
//! Zaki's equivalence-class enumeration: each search node carries its tid-set
//! and extends with items greater than its last item, intersecting tid-sets.
//! This is the workhorse complete miner in this workspace — on the paper's
//! dataset sizes a tid-set is a few machine words, so intersection dominates
//! nothing.

use crate::budget::{Budget, Outcome};
use crate::types::MinedPattern;
use cfp_itemset::{Itemset, TidSet, TransactionDb, VerticalIndex};

/// Mines the complete set of frequent patterns depth-first.
pub fn eclat(db: &TransactionDb, min_count: usize, budget: &Budget) -> Outcome {
    let min_count = min_count.max(1);
    let index = VerticalIndex::new(db);
    let frequent: Vec<(u32, &TidSet)> = (0..db.num_items())
        .filter_map(|i| {
            let t = index.item_tidset(i);
            (t.count() >= min_count).then_some((i, t))
        })
        .collect();

    let mut ctx = Ctx {
        min_count,
        budget,
        results: Vec::new(),
        nodes: 0,
        capped: false,
    };
    let mut prefix: Vec<u32> = Vec::new();
    // Each frequent item roots a subtree over the items after it.
    for (pos, &(item, tids)) in frequent.iter().enumerate() {
        prefix.push(item);
        ctx.results.push(MinedPattern::new(
            Itemset::from_items(&prefix),
            tids.count(),
        ));
        dfs(&frequent, pos, tids, &mut prefix, &mut ctx);
        prefix.pop();
        if ctx.capped {
            return Outcome::capped(ctx.results, ctx.nodes);
        }
    }
    Outcome::complete(ctx.results, ctx.nodes)
}

struct Ctx<'a> {
    min_count: usize,
    budget: &'a Budget,
    results: Vec<MinedPattern>,
    nodes: u64,
    capped: bool,
}

fn dfs(
    frequent: &[(u32, &TidSet)],
    pos: usize,
    tids: &TidSet,
    prefix: &mut Vec<u32>,
    ctx: &mut Ctx<'_>,
) {
    for (next_pos, &(item, item_tids)) in frequent.iter().enumerate().skip(pos + 1) {
        ctx.nodes += 1;
        if ctx.nodes.is_multiple_of(512) && ctx.budget.exhausted(ctx.results.len(), ctx.nodes) {
            ctx.capped = true;
            return;
        }
        let support = tids.intersection_count(item_tids);
        if support < ctx.min_count {
            continue;
        }
        let sub = tids.intersection(item_tids);
        prefix.push(item);
        ctx.results
            .push(MinedPattern::new(Itemset::from_items(prefix), support));
        dfs(frequent, next_pos, &sub, prefix, ctx);
        prefix.pop();
        if ctx.capped {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::apriori;
    use crate::testutil::{arb_small_db, assert_same_patterns, brute_frequent};
    use crate::types::sort_canonical;
    use proptest::prelude::*;

    #[test]
    fn matches_brute_force_on_fig3() {
        let db = TransactionDb::from_dense(vec![
            Itemset::from_items(&[0, 1, 3]),
            Itemset::from_items(&[1, 2, 4]),
            Itemset::from_items(&[0, 2, 4]),
            Itemset::from_items(&[0, 1, 2, 3, 4]),
        ]);
        for min in 1..=4 {
            let mut got = eclat(&db, min, &Budget::unlimited()).patterns;
            sort_canonical(&mut got);
            let want = brute_frequent(&db, min);
            assert_same_patterns(&format!("eclat@{min}"), &got, &want);
        }
    }

    #[test]
    fn budget_caps_diagonal_explosion() {
        let db = cfp_datagen::diag(16);
        let out = eclat(&db, 8, &Budget::unlimited().with_max_patterns(5_000));
        assert!(!out.complete);
        assert!(out.patterns.len() >= 5_000);
    }

    #[test]
    fn agrees_with_apriori_on_quest_data() {
        let db = cfp_datagen::quest(&cfp_datagen::QuestConfig {
            n_transactions: 300,
            n_items: 40,
            ..Default::default()
        });
        let mut a = apriori(&db, 6, &Budget::unlimited()).patterns;
        let mut e = eclat(&db, 6, &Budget::unlimited()).patterns;
        sort_canonical(&mut a);
        sort_canonical(&mut e);
        assert_same_patterns("apriori-vs-eclat", &e, &a);
        assert!(!a.is_empty(), "workload should produce frequent patterns");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// Eclat equals brute force on random databases.
        #[test]
        fn matches_brute_force_on_random_dbs((db, min) in arb_small_db()) {
            let mut got = eclat(&db, min, &Budget::unlimited()).patterns;
            sort_canonical(&mut got);
            let want = brute_frequent(&db, min);
            prop_assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(&g.items, &w.items);
                prop_assert_eq!(g.support, w.support);
            }
        }
    }
}
