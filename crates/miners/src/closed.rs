//! Closed-pattern mining with prefix-preserving closure extension.
//!
//! An LCM-style enumerator (Uno et al.; the same scheme underlies FPClose
//! and CLOSET+): the closed frequent patterns form a tree under the
//! "ppc-extension" parent relation, so each closed pattern is generated
//! exactly once with no duplicate checks and no global result set. This is
//! the workspace's ground-truth engine — Figures 7, 8 and 9 compare
//! Pattern-Fusion against the complete closed sets it produces.

use crate::budget::{Budget, Outcome};
use crate::types::MinedPattern;
use cfp_itemset::{ClosureOperator, Itemset, TidSet, TransactionDb, VerticalIndex};

/// Mines all closed frequent patterns (Definition 2 of the paper).
pub fn closed(db: &TransactionDb, min_count: usize, budget: &Budget) -> Outcome {
    let min_count = min_count.max(1);
    let mut results = Vec::new();
    let mut nodes: u64 = 0;
    if db.len() < min_count {
        return Outcome::complete(results, nodes);
    }
    let index = VerticalIndex::new(db);
    let cl = ClosureOperator::new(&index);

    // Root: the closure of the empty set (items present in every
    // transaction). It is the unique closed pattern of support |D|.
    let root_tids = TidSet::full(db.len());
    let root = cl.closure_of_tidset(&root_tids);
    if !root.is_empty() {
        results.push(MinedPattern::new(root.clone(), db.len()));
    }

    let mut ctx = Ctx {
        min_count,
        budget,
        index: &index,
        cl: &cl,
        num_items: db.num_items(),
        results,
        nodes,
        capped: false,
    };
    expand(&root, &root_tids, None, &mut ctx);
    nodes = ctx.nodes;
    if ctx.capped {
        Outcome::capped(ctx.results, nodes)
    } else {
        Outcome::complete(ctx.results, nodes)
    }
}

struct Ctx<'a> {
    min_count: usize,
    budget: &'a Budget,
    index: &'a VerticalIndex,
    cl: &'a ClosureOperator<'a>,
    num_items: u32,
    results: Vec<MinedPattern>,
    nodes: u64,
    capped: bool,
}

/// Expands closed pattern `p` (with support set `tids`) by every item above
/// the core index, keeping only prefix-preserving closures.
fn expand(p: &Itemset, tids: &TidSet, core: Option<u32>, ctx: &mut Ctx<'_>) {
    let start = core.map_or(0, |c| c + 1);
    for item in start..ctx.num_items {
        if p.contains(item) {
            continue;
        }
        ctx.nodes += 1;
        if ctx.nodes.is_multiple_of(256) && ctx.budget.exhausted(ctx.results.len(), ctx.nodes) {
            ctx.capped = true;
            return;
        }
        let sub = ctx.index.extend_tidset(tids, item);
        let support = sub.count();
        if support < ctx.min_count {
            continue;
        }
        let q = ctx.cl.closure_of_tidset(&sub);
        // Prefix-preserving check: the closure must not introduce any item
        // below `item` that `p` lacks, otherwise `q` belongs to another
        // branch and would be generated twice.
        if !prefix_preserved(p, &q, item) {
            continue;
        }
        ctx.results.push(MinedPattern::new(q.clone(), support));
        expand(&q, &sub, Some(item), ctx);
        if ctx.capped {
            return;
        }
    }
}

/// Whether `q ∩ [0, item) == p ∩ [0, item)`. Since `p ⊆ q` always holds, it
/// suffices to check that `q` has no item `< item` missing from `p`.
fn prefix_preserved(p: &Itemset, q: &Itemset, item: u32) -> bool {
    let mut p_iter = p.iter().take_while(|&x| x < item);
    for x in q.iter().take_while(|&x| x < item) {
        if p_iter.next() != Some(x) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{arb_small_db, assert_same_patterns, brute_closed};
    use crate::types::sort_canonical;
    use proptest::prelude::*;

    fn fig3_db() -> TransactionDb {
        TransactionDb::from_dense(vec![
            Itemset::from_items(&[0, 1, 3]),
            Itemset::from_items(&[1, 2, 4]),
            Itemset::from_items(&[0, 2, 4]),
            Itemset::from_items(&[0, 1, 2, 3, 4]),
        ])
    }

    #[test]
    fn matches_brute_force_closed_sets() {
        let db = fig3_db();
        for min in 1..=4 {
            let mut got = closed(&db, min, &Budget::unlimited()).patterns;
            sort_canonical(&mut got);
            let want = brute_closed(&db, min);
            assert_same_patterns(&format!("closed@{min}"), &got, &want);
        }
    }

    #[test]
    fn root_closure_is_reported_once() {
        // Every transaction contains item 9: the root closed set is (9).
        let db = TransactionDb::from_dense(vec![
            Itemset::from_items(&[0, 9]),
            Itemset::from_items(&[1, 9]),
            Itemset::from_items(&[0, 1, 9]),
        ]);
        let out = closed(&db, 1, &Budget::unlimited());
        let roots: Vec<_> = out.patterns.iter().filter(|p| p.support == 3).collect();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].items, Itemset::from_items(&[9]));
    }

    #[test]
    fn no_duplicates_ever() {
        let db = cfp_datagen::quest(&cfp_datagen::QuestConfig {
            n_transactions: 200,
            n_items: 30,
            ..Default::default()
        });
        let out = closed(&db, 4, &Budget::unlimited());
        let mut seen = std::collections::HashSet::new();
        for p in &out.patterns {
            assert!(seen.insert(p.items.clone()), "duplicate {p:?}");
        }
    }

    #[test]
    fn diag_closed_layer_has_expected_structure() {
        // In Diagn at support n−k, closed patterns of size k are exactly the
        // k-subsets of integers: for n=8, min=6 → sizes ≤ 2, count
        // C(8,1) + C(8,2) = 36.
        let db = cfp_datagen::diag(8);
        let out = closed(&db, 6, &Budget::unlimited());
        assert!(out.complete);
        assert_eq!(out.patterns.len(), 36);
        for p in &out.patterns {
            assert_eq!(p.support, 8 - p.items.len());
        }
    }

    #[test]
    fn budget_caps_closed_explosion() {
        let db = cfp_datagen::diag(20);
        let out = closed(&db, 10, &Budget::unlimited().with_max_patterns(2_000));
        assert!(!out.complete);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// The LCM-style enumeration equals brute-force closed sets.
        #[test]
        fn matches_brute_force_on_random_dbs((db, min) in arb_small_db()) {
            let mut got = closed(&db, min, &Budget::unlimited()).patterns;
            sort_canonical(&mut got);
            let want = brute_closed(&db, min);
            prop_assert_eq!(got.len(), want.len(), "count mismatch");
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(&g.items, &w.items);
                prop_assert_eq!(g.support, w.support);
            }
        }
    }
}
