//! The FP-tree: a prefix-tree summary of a transaction database.
//!
//! Transactions are inserted with their items reordered by descending
//! frequency so shared prefixes collapse; per-item node chains (the header
//! table) let FP-growth extract conditional pattern bases without touching
//! the original database.

use cfp_itemset::TransactionDb;
use std::collections::HashMap;

/// Sentinel for "no node".
const NONE: u32 = u32::MAX;

/// One FP-tree node.
#[derive(Debug, Clone)]
struct Node {
    /// Index into [`FpTree::items`] (not a raw item id).
    item_idx: u32,
    count: usize,
    parent: u32,
    /// Next node carrying the same item (header chain).
    next: u32,
    children: Vec<u32>,
}

/// Header-table entry for one distinct item in the tree.
#[derive(Debug, Clone)]
struct ItemInfo {
    /// The database item id.
    item: u32,
    /// Total support of the item within this (conditional) tree.
    support: usize,
    /// First node of the header chain.
    head: u32,
}

/// A weighted prefix path with its multiplicity, as extracted from header
/// chains.
pub(crate) type WeightedPaths = Vec<(Vec<u32>, usize)>;

/// A frequency-ordered prefix tree with header chains.
#[derive(Debug, Clone)]
pub struct FpTree {
    items: Vec<ItemInfo>,
    nodes: Vec<Node>,
}

impl FpTree {
    /// Builds the tree for a whole database at threshold `min_count`.
    pub fn from_db(db: &TransactionDb, min_count: usize) -> Self {
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for t in db.transactions() {
            for item in t.iter() {
                *counts.entry(item).or_insert(0) += 1;
            }
        }
        let weighted = db
            .transactions()
            .iter()
            .map(|t| (t.items().to_vec(), 1usize));
        Self::from_weighted(weighted, &counts, min_count)
    }

    /// Builds a tree from weighted transactions (used for conditional trees,
    /// where each prefix path carries the count of its originating node).
    ///
    /// `counts` must hold the support of every item appearing in the input.
    pub(crate) fn from_weighted<I>(
        transactions: I,
        counts: &HashMap<u32, usize>,
        min_count: usize,
    ) -> Self
    where
        I: IntoIterator<Item = (Vec<u32>, usize)>,
    {
        // Frequent items ordered by (desc support, asc id) — the canonical
        // FP ordering; index in `items` is the tree-local item index.
        let mut frequent: Vec<(u32, usize)> = counts
            .iter()
            .filter(|&(_, &c)| c >= min_count)
            .map(|(&i, &c)| (i, c))
            .collect();
        frequent.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let rank: HashMap<u32, u32> = frequent
            .iter()
            .enumerate()
            .map(|(idx, &(item, _))| (item, idx as u32))
            .collect();

        let items: Vec<ItemInfo> = frequent
            .iter()
            .map(|&(item, support)| ItemInfo {
                item,
                support,
                head: NONE,
            })
            .collect();

        let mut tree = FpTree {
            items,
            nodes: vec![Node {
                item_idx: NONE,
                count: 0,
                parent: NONE,
                next: NONE,
                children: Vec::new(),
            }],
        };

        let mut path: Vec<u32> = Vec::new();
        for (txn, weight) in transactions {
            path.clear();
            path.extend(txn.iter().filter_map(|i| rank.get(i).copied()));
            path.sort_unstable();
            path.dedup();
            tree.insert(&path, weight);
        }
        tree
    }

    /// Inserts a frequency-ordered path of item indices with multiplicity
    /// `count`.
    fn insert(&mut self, path: &[u32], count: usize) {
        let mut current = 0u32; // root
        for &item_idx in path {
            let found = self.nodes[current as usize]
                .children
                .iter()
                .copied()
                .find(|&c| self.nodes[c as usize].item_idx == item_idx);
            current = match found {
                Some(child) => {
                    self.nodes[child as usize].count += count;
                    child
                }
                None => {
                    let id = self.nodes.len() as u32;
                    let head = self.items[item_idx as usize].head;
                    self.nodes.push(Node {
                        item_idx,
                        count,
                        parent: current,
                        next: head,
                        children: Vec::new(),
                    });
                    self.items[item_idx as usize].head = id;
                    self.nodes[current as usize].children.push(id);
                    id
                }
            };
        }
    }

    /// Number of distinct frequent items in this tree.
    pub fn num_items(&self) -> usize {
        self.items.len()
    }

    /// Number of tree nodes, excluding the root.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len() - 1
    }

    /// The database item id at tree-local index `idx`.
    pub(crate) fn item_at(&self, idx: usize) -> u32 {
        self.items[idx].item
    }

    /// Support of the item at tree-local index `idx`.
    pub(crate) fn support_at(&self, idx: usize) -> usize {
        self.items[idx].support
    }

    /// Whether the tree consists of a single root-to-leaf path.
    pub(crate) fn is_single_path(&self) -> bool {
        let mut current = 0usize;
        loop {
            match self.nodes[current].children.len() {
                0 => return true,
                1 => current = self.nodes[current].children[0] as usize,
                _ => return false,
            }
        }
    }

    /// The (item id, count) pairs along the single path, root first.
    ///
    /// Only meaningful when [`FpTree::is_single_path`] holds.
    pub(crate) fn single_path(&self) -> Vec<(u32, usize)> {
        let mut out = Vec::new();
        let mut current = 0usize;
        while let Some(&child) = self.nodes[current].children.first() {
            let node = &self.nodes[child as usize];
            out.push((self.items[node.item_idx as usize].item, node.count));
            current = child as usize;
        }
        out
    }

    /// The conditional pattern base of the item at tree-local index `idx`:
    /// for each node in its header chain, the path of **item ids** from just
    /// below the root down to the node's parent, weighted by the node count.
    pub(crate) fn conditional_base(&self, idx: usize) -> (WeightedPaths, HashMap<u32, usize>) {
        let mut base = Vec::new();
        let mut counts: HashMap<u32, usize> = HashMap::new();
        let mut node_id = self.items[idx].head;
        while node_id != NONE {
            let node = &self.nodes[node_id as usize];
            let mut path = Vec::new();
            let mut up = node.parent;
            while up != 0 && up != NONE {
                let n = &self.nodes[up as usize];
                path.push(self.items[n.item_idx as usize].item);
                up = n.parent;
            }
            if !path.is_empty() {
                for &it in &path {
                    *counts.entry(it).or_insert(0) += node.count;
                }
                path.reverse();
                base.push((path, node.count));
            }
            node_id = node.next;
        }
        (base, counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_itemset::Itemset;

    fn db() -> TransactionDb {
        // The FP-growth paper's running example (items renamed to 0..5):
        // f=0 c=1 a=2 b=3 m=4 p=5 over 5 transactions.
        TransactionDb::from_dense(vec![
            Itemset::from_items(&[0, 2, 1, 3, 4]), // f a c b m  (paper: f,a,c,d,g,i,m,p → frequent part)
            Itemset::from_items(&[0, 1, 2, 4, 5]),
            Itemset::from_items(&[0, 3]),
            Itemset::from_items(&[1, 3, 5]),
            Itemset::from_items(&[0, 1, 2, 4, 5]),
        ])
    }

    #[test]
    fn frequent_items_and_ordering() {
        let tree = FpTree::from_db(&db(), 3);
        // Supports: f=4 c=4 a=3 b=3 m=3 p=3 → all six frequent at 3.
        assert_eq!(tree.num_items(), 6);
        // Ordering: desc support, asc id ⇒ 0(f,4), 1(c,4), 2(a,3), 3(b,3)...
        assert_eq!(tree.item_at(0), 0);
        assert_eq!(tree.item_at(1), 1);
        assert_eq!(tree.support_at(0), 4);
        assert_eq!(tree.support_at(5), 3);
    }

    #[test]
    fn shared_prefixes_collapse() {
        let tree = FpTree::from_db(&db(), 3);
        // Transactions 1, 2 and 5 share the prefix f-c-a; total nodes must be
        // far fewer than total item occurrences (18).
        assert!(tree.num_nodes() <= 12, "nodes = {}", tree.num_nodes());
    }

    #[test]
    fn conditional_base_weights_sum_to_support() {
        let tree = FpTree::from_db(&db(), 3);
        // Item p (id 5, support 3): conditional base paths carry 3 total.
        let p_idx = (0..tree.num_items())
            .find(|&i| tree.item_at(i) == 5)
            .unwrap();
        let (base, counts) = tree.conditional_base(p_idx);
        let total: usize = base.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 3);
        // c co-occurs with p in all three of p's transactions.
        assert_eq!(counts.get(&1).copied(), Some(3));
    }

    #[test]
    fn single_path_detection() {
        let linear = TransactionDb::from_dense(vec![
            Itemset::from_items(&[0, 1, 2]),
            Itemset::from_items(&[0, 1]),
            Itemset::from_items(&[0]),
        ]);
        let tree = FpTree::from_db(&linear, 1);
        assert!(tree.is_single_path());
        let path = tree.single_path();
        assert_eq!(path, vec![(0, 3), (1, 2), (2, 1)]);

        let branchy = FpTree::from_db(&db(), 3);
        assert!(!branchy.is_single_path());
    }

    #[test]
    fn infrequent_items_are_excluded() {
        let tree = FpTree::from_db(&db(), 4);
        // Only f (4) and c (4) survive.
        assert_eq!(tree.num_items(), 2);
    }
}
