//! Brute-force reference implementations for cross-checking miners.
//!
//! Only compiled for tests. Databases must have ≤ 16 items so the full
//! subset lattice (2^d itemsets) stays enumerable.

use crate::types::MinedPattern;
use cfp_itemset::{Itemset, TransactionDb};
use proptest::prelude::*;

/// All frequent patterns by exhaustive lattice enumeration.
pub fn brute_frequent(db: &TransactionDb, min_count: usize) -> Vec<MinedPattern> {
    let d = db.num_items();
    assert!(d <= 16, "brute force limited to 16 items");
    let mut out = Vec::new();
    for mask in 1u32..(1 << d) {
        let items: Vec<u32> = (0..d).filter(|i| mask & (1 << i) != 0).collect();
        let itemset = Itemset::from_sorted(items);
        let support = db.support(&itemset);
        if support >= min_count {
            out.push(MinedPattern::new(itemset, support));
        }
    }
    out.sort_by(|a, b| a.items.cmp(&b.items));
    out
}

/// Frequent **closed** patterns: frequent patterns with no superset of equal
/// support.
pub fn brute_closed(db: &TransactionDb, min_count: usize) -> Vec<MinedPattern> {
    let freq = brute_frequent(db, min_count);
    freq.iter()
        .filter(|p| {
            !freq
                .iter()
                .any(|q| q.support == p.support && p.items.is_proper_subset_of(&q.items))
        })
        .cloned()
        .collect()
}

/// Frequent **maximal** patterns: frequent patterns with no frequent proper
/// superset.
pub fn brute_maximal(db: &TransactionDb, min_count: usize) -> Vec<MinedPattern> {
    let freq = brute_frequent(db, min_count);
    freq.iter()
        .filter(|p| !freq.iter().any(|q| p.items.is_proper_subset_of(&q.items)))
        .cloned()
        .collect()
}

/// Strategy: small random databases (≤ 12 items, ≤ 24 transactions) paired
/// with a minimum support count in `1..=n`.
pub fn arb_small_db() -> impl Strategy<Value = (TransactionDb, usize)> {
    let txns = proptest::collection::vec(proptest::collection::vec(0u32..12, 1..8), 1..24);
    txns.prop_flat_map(|ts| {
        let n = ts.len();
        let db = TransactionDb::from_dense(ts.iter().map(|t| Itemset::from_items(t)).collect());
        (Just(db), 1..=n)
    })
}

/// Asserts two canonical pattern lists are identical, with a readable diff.
pub fn assert_same_patterns(label: &str, got: &[MinedPattern], want: &[MinedPattern]) {
    let gs: Vec<String> = got.iter().map(|p| format!("{p:?}")).collect();
    let ws: Vec<String> = want.iter().map(|p| format!("{p:?}")).collect();
    assert_eq!(gs, ws, "{label}: miner output differs from reference");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3_db() -> TransactionDb {
        TransactionDb::from_dense(vec![
            Itemset::from_items(&[0, 1, 3]),
            Itemset::from_items(&[1, 2, 4]),
            Itemset::from_items(&[0, 2, 4]),
            Itemset::from_items(&[0, 1, 2, 3, 4]),
        ])
    }

    #[test]
    fn brute_frequent_counts() {
        let db = fig3_db();
        // At min count 4 nothing is frequent; at 1 everything in some txn.
        assert!(brute_frequent(&db, 4).is_empty());
        let all = brute_frequent(&db, 1);
        // Frequent patterns at count 1 = all subsets of some transaction:
        // subsets of abcef (31 non-empty) — every pattern ⊆ t3.
        assert_eq!(all.len(), 31);
    }

    #[test]
    fn closed_and_maximal_nest() {
        let db = fig3_db();
        for min in 1..=4 {
            let freq = brute_frequent(&db, min);
            let closed = brute_closed(&db, min);
            let maximal = brute_maximal(&db, min);
            assert!(maximal.len() <= closed.len());
            assert!(closed.len() <= freq.len());
            // Every maximal pattern is closed.
            for m in &maximal {
                assert!(closed.contains(m), "maximal ⊄ closed at {min}");
            }
        }
    }

    #[test]
    fn fig3_closed_at_two() {
        // From the paper's example: abe, bcf, acf, abcef all appear once as
        // transactions; with duplicates collapsed, support-2 closed patterns
        // are the pairwise intersections with support 2: ab, be, ae... let us
        // just sanity-check two known ones.
        let db = fig3_db();
        let closed = brute_closed(&db, 2);
        let names: Vec<String> = closed.iter().map(|p| p.items.to_string()).collect();
        assert!(
            names.contains(&"(0 1 3)".to_string()),
            "abe closed: {names:?}"
        );
        assert!(names.contains(&"(2 4)".to_string()), "cf closed: {names:?}");
    }
}
