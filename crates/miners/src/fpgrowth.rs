//! FP-growth: frequent-pattern mining without candidate generation.
//!
//! Recursively projects the FP-tree on each frequent item (ascending
//! frequency, so conditional trees shrink fastest), mining the conditional
//! tree for patterns ending in that item. Single-path conditional trees are
//! closed form: every subset of the path is frequent with the minimum count
//! along it.

use crate::budget::{Budget, Outcome};
use crate::fptree::FpTree;
use crate::types::MinedPattern;
use cfp_itemset::{Itemset, TransactionDb};

/// Mines the complete set of frequent patterns with FP-growth.
pub fn fp_growth(db: &TransactionDb, min_count: usize, budget: &Budget) -> Outcome {
    let min_count = min_count.max(1);
    let tree = FpTree::from_db(db, min_count);
    let mut ctx = Ctx {
        min_count,
        budget,
        results: Vec::new(),
        nodes: 0,
        capped: false,
    };
    let mut suffix: Vec<u32> = Vec::new();
    mine(&tree, &mut suffix, &mut ctx);
    if ctx.capped {
        Outcome::capped(ctx.results, ctx.nodes)
    } else {
        Outcome::complete(ctx.results, ctx.nodes)
    }
}

struct Ctx<'a> {
    min_count: usize,
    budget: &'a Budget,
    results: Vec<MinedPattern>,
    nodes: u64,
    capped: bool,
}

impl Ctx<'_> {
    fn emit(&mut self, items: &[u32], support: usize) {
        self.results
            .push(MinedPattern::new(Itemset::from_items(items), support));
    }

    fn tick(&mut self) -> bool {
        self.nodes += 1;
        if self.nodes.is_multiple_of(256) && self.budget.exhausted(self.results.len(), self.nodes) {
            self.capped = true;
        }
        self.capped
    }
}

fn mine(tree: &FpTree, suffix: &mut Vec<u32>, ctx: &mut Ctx<'_>) {
    if tree.is_single_path() {
        // Enumerate every non-empty subset of the path; the support of a
        // subset is the count of its deepest (least frequent) node.
        let path = tree.single_path();
        enumerate_path_subsets(&path, suffix, ctx);
        return;
    }
    // Bottom of the header table first (ascending support).
    for idx in (0..tree.num_items()).rev() {
        if ctx.tick() {
            return;
        }
        let item = tree.item_at(idx);
        let support = tree.support_at(idx);
        suffix.push(item);
        ctx.emit(suffix, support);

        let (base, counts) = tree.conditional_base(idx);
        if !base.is_empty() {
            let conditional = FpTree::from_weighted(base, &counts, ctx.min_count);
            if conditional.num_items() > 0 {
                mine(&conditional, suffix, ctx);
            }
        }
        suffix.pop();
        if ctx.capped {
            return;
        }
    }
}

/// Emits `suffix ∪ S` for every non-empty subset `S` of `path`, with support
/// `min(count over S)`; iterative over a bitmask when the path is short,
/// recursive otherwise (paths longer than 62 items are split recursively).
fn enumerate_path_subsets(path: &[(u32, usize)], suffix: &mut Vec<u32>, ctx: &mut Ctx<'_>) {
    // Recursive formulation: each element is either skipped or taken.
    fn rec(
        path: &[(u32, usize)],
        pos: usize,
        min_count_so_far: usize,
        suffix: &mut Vec<u32>,
        taken: usize,
        ctx: &mut Ctx<'_>,
    ) {
        if ctx.tick() {
            return;
        }
        if pos == path.len() {
            if taken > 0 {
                ctx.emit(suffix, min_count_so_far);
            }
            return;
        }
        // Skip path[pos].
        rec(path, pos + 1, min_count_so_far, suffix, taken, ctx);
        if ctx.capped {
            return;
        }
        // Take path[pos].
        let (item, count) = path[pos];
        suffix.push(item);
        rec(
            path,
            pos + 1,
            min_count_so_far.min(count),
            suffix,
            taken + 1,
            ctx,
        );
        suffix.pop();
    }
    rec(path, 0, usize::MAX, suffix, 0, ctx);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{arb_small_db, assert_same_patterns, brute_frequent};
    use crate::types::sort_canonical;
    use proptest::prelude::*;

    fn fp_paper_db() -> TransactionDb {
        TransactionDb::from_dense(vec![
            Itemset::from_items(&[0, 2, 1, 3, 4]),
            Itemset::from_items(&[0, 1, 2, 4, 5]),
            Itemset::from_items(&[0, 3]),
            Itemset::from_items(&[1, 3, 5]),
            Itemset::from_items(&[0, 1, 2, 4, 5]),
        ])
    }

    #[test]
    fn matches_brute_force_on_fp_paper_example() {
        let db = fp_paper_db();
        for min in 1..=5 {
            let mut got = fp_growth(&db, min, &Budget::unlimited()).patterns;
            sort_canonical(&mut got);
            let want = brute_frequent(&db, min);
            assert_same_patterns(&format!("fp@{min}"), &got, &want);
        }
    }

    #[test]
    fn single_path_shortcut_is_exact() {
        let db = TransactionDb::from_dense(vec![
            Itemset::from_items(&[0, 1, 2, 3]),
            Itemset::from_items(&[0, 1, 2]),
            Itemset::from_items(&[0, 1]),
            Itemset::from_items(&[0]),
        ]);
        let mut got = fp_growth(&db, 1, &Budget::unlimited()).patterns;
        sort_canonical(&mut got);
        let want = brute_frequent(&db, 1);
        assert_same_patterns("single-path", &got, &want);
    }

    #[test]
    fn budget_caps_subset_explosion() {
        // One long transaction repeated: a single path of 24 items at
        // min count 2 yields 2^24 subsets; the cap must trip long before.
        let t: Vec<u32> = (0..24).collect();
        let db = TransactionDb::from_dense(vec![Itemset::from_items(&t), Itemset::from_items(&t)]);
        let out = fp_growth(&db, 2, &Budget::unlimited().with_max_nodes(10_000));
        assert!(!out.complete);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// FP-growth equals brute force on random databases.
        #[test]
        fn matches_brute_force_on_random_dbs((db, min) in arb_small_db()) {
            let mut got = fp_growth(&db, min, &Budget::unlimited()).patterns;
            sort_canonical(&mut got);
            let want = brute_frequent(&db, min);
            prop_assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(&g.items, &w.items);
                prop_assert_eq!(g.support, w.support);
            }
        }
    }
}
