//! Pattern-Fusion's initial pool: the complete set of small frequent
//! patterns, each carrying its support set.
//!
//! The paper (§2.3): "Pattern-Fusion assumes available an initial pool of
//! small frequent patterns, which is the complete set of frequent patterns up
//! to a small size, e.g., 3. This initial pool can be mined with any existing
//! efficient mining algorithm." We use a depth-bounded Eclat so every pool
//! entry keeps the tid-set Pattern-Fusion needs for distance computations and
//! fusion.
//!
//! Two entry points share one DFS:
//!
//! * [`initial_pool_slab`] — the engine's path: mines **in parallel**
//!   directly into a columnar [`PatternPool`] slab. The per-item DFS
//!   subtrees are independent, so they are distributed over the
//!   work-stealing queue ([`crate::parallel`]); each worker emits into a
//!   private slab segment and the segments are spliced in subtree order, so
//!   the row sequence is bit-for-bit the serial DFS emit order at any
//!   thread count.
//! * [`initial_pool`] — the `Vec<PoolPattern>` reference form, kept for
//!   miners-agreement tests and harnesses that want owned patterns. Same
//!   order, same tid-sets.
//!
//! Pool entries are *counted* patterns: every emitted row carries its cached
//! cardinality, so downstream support reads (the ball-query engine's
//! cardinality prune, the stratified rank) are O(1) and never re-popcount.

use crate::parallel::run_tasks;
use cfp_itemset::{Itemset, PatternPool, TidSet, TransactionDb, VerticalIndex};
use std::time::Duration;
use std::time::Instant;

/// A pool entry: a frequent pattern with its support set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolPattern {
    /// The pattern.
    pub items: Itemset,
    /// Its support set `D(α)`.
    pub tids: TidSet,
}

impl PoolPattern {
    /// Absolute support.
    pub fn support(&self) -> usize {
        self.tids.count()
    }
}

/// What [`initial_pool_slab`] did: evidence for the parallel mine that the
/// engine rolls into its run statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolMineStats {
    /// Worker threads the DFS fan-out used.
    pub workers: usize,
    /// Per-item subtree tasks mined.
    pub subtrees: usize,
    /// First-item subtrees that were split one level deeper (depth-2
    /// head/sub tasks) to balance a skewed fan-out.
    pub split_subtrees: usize,
    /// Wall-clock time of the parallel subtree mining phase.
    pub mine_time: Duration,
    /// Wall-clock time splicing worker segments into the final slab (plus
    /// the stratified permutation when requested).
    pub splice_time: Duration,
}

/// Mines all frequent patterns of size ≤ `max_len` with their tid-sets into
/// a columnar [`PatternPool`], fanning the per-item DFS subtrees out over
/// `threads` workers.
///
/// Rows are emitted in lexicographic itemset order — exactly the serial DFS
/// order, at any thread count: subtree `i` (all patterns whose smallest item
/// is frequent item `i`) is mined into its own slab segment, and segments
/// are spliced in subtree order.
pub fn initial_pool_slab(
    db: &TransactionDb,
    min_count: usize,
    max_len: usize,
    threads: usize,
) -> (PatternPool, PoolMineStats) {
    let min_count = min_count.max(1);
    let universe = db.len();
    let index = VerticalIndex::new(db);
    let frequent: Vec<(u32, &TidSet)> = (0..db.num_items())
        .filter_map(|i| {
            let t = index.item_tidset(i);
            (t.count() >= min_count).then_some((i, t))
        })
        .collect();

    let mut stats = PoolMineStats {
        workers: threads.max(1),
        subtrees: frequent.len(),
        ..Default::default()
    };
    if max_len == 0 || frequent.is_empty() {
        return (PatternPool::new(universe), stats);
    }

    // One task per frequent first item: the subtree of every pattern whose
    // smallest item is that item. Subtrees shrink with the item position
    // (extensions only look rightward), so the work-stealing queue keeps
    // workers busy on the long early subtrees — except when one subtree
    // dominates outright. A deterministic work estimate (support × rightward
    // fan-out) spots that skew, and any subtree estimated above a quarter of
    // the total is split one level deeper: a head task emitting just `{i}`
    // plus one task per depth-2 branch `{i, j}`. The task list and each
    // task's emit sequence are functions of pool content alone, and splicing
    // head + branches in order reproduces the whole-subtree emit sequence
    // byte for byte, so the row order stays the serial DFS order no matter
    // how (or whether) the split decision fires.
    let split_eligible = threads > 1 && max_len >= 2 && frequent.len() > 1;
    let estimate: Vec<u64> = frequent
        .iter()
        .enumerate()
        .map(|(pos, (_, t))| t.count() as u64 * (frequent.len() - pos - 1) as u64)
        .collect();
    let total_estimate: u64 = estimate.iter().sum();
    let mut tasks: Vec<SubtreeTask> = Vec::with_capacity(frequent.len());
    for (pos, est) in estimate.iter().enumerate() {
        if split_eligible && est.saturating_mul(4) > total_estimate {
            stats.split_subtrees += 1;
            tasks.push(SubtreeTask::Head(pos));
            tasks.extend((pos + 1..frequent.len()).map(|next| SubtreeTask::Sub(pos, next)));
        } else {
            tasks.push(SubtreeTask::Whole(pos));
        }
    }

    let t_mine = Instant::now();
    let frequent_ref = &frequent;
    let tasks_ref = &tasks;
    let segments = run_tasks(tasks.len(), threads, |ti| {
        let mut seg = PatternPool::new(universe);
        match tasks_ref[ti] {
            SubtreeTask::Whole(pos) => {
                let (item, tids) = frequent_ref[pos];
                let mut prefix = vec![item];
                seg.push_tidset(&prefix, tids);
                dfs_slab(
                    frequent_ref,
                    pos,
                    tids,
                    &mut prefix,
                    max_len,
                    min_count,
                    &mut seg,
                );
            }
            SubtreeTask::Head(pos) => {
                let (item, tids) = frequent_ref[pos];
                seg.push_tidset(&[item], tids);
            }
            SubtreeTask::Sub(pos, next_pos) => {
                let (item, tids) = frequent_ref[pos];
                let (next_item, next_tids) = frequent_ref[next_pos];
                if tids
                    .intersection_count_at_least(next_tids, min_count)
                    .is_some()
                {
                    let sub = tids.intersection(next_tids);
                    let mut prefix = vec![item, next_item];
                    seg.push_tidset(&prefix, &sub);
                    dfs_slab(
                        frequent_ref,
                        next_pos,
                        &sub,
                        &mut prefix,
                        max_len,
                        min_count,
                        &mut seg,
                    );
                }
            }
        }
        seg
    });
    stats.mine_time = t_mine.elapsed();

    let t_splice = Instant::now();
    let rows = segments.iter().map(PatternPool::len).sum();
    let mut pool = PatternPool::with_capacity(universe, rows);
    for seg in &segments {
        pool.append_pool(seg);
    }
    stats.splice_time = t_splice.elapsed();
    (pool, stats)
}

/// First-item subtree spans of a **plain** (DFS emit order) pool slab:
/// `(item, rows)` per frequent first item, ascending, covering the slab.
///
/// The plain emit order opens every first-item subtree with its singleton
/// row, so each span starts at a 1-item row and runs to the next one —
/// these are exactly the splice units of the incremental re-mine
/// ([`delta_pool_slab`]). Meaningless on a stratified/permuted slab.
pub fn subtree_spans(pool: &PatternPool) -> Vec<(u32, std::ops::Range<u32>)> {
    let rows = pool.len() as u32;
    let mut spans: Vec<(u32, std::ops::Range<u32>)> = Vec::new();
    for r in 0..rows {
        let items = pool.items(r);
        if items.len() == 1 {
            if let Some(last) = spans.last_mut() {
                last.1.end = r;
            }
            spans.push((items[0], r..rows));
        } else {
            debug_assert!(!spans.is_empty(), "plain pools open with a singleton row");
        }
    }
    spans
}

/// Re-mines only the first-item subtrees a database delta touched, splicing
/// every untouched subtree forward from the previous generation's plain
/// slab — the incremental counterpart of [`initial_pool_slab`], bit-for-bit
/// identical to it on the grown database.
///
/// Inputs: `index` is the vertical index of the **grown** database
/// ([`VerticalIndex::absorb`]); `old_pool` is the previous generation's
/// plain slab with `old_spans` its [`subtree_spans`]; `dirty` lists
/// (sorted, ascending) every item with at least one occurrence among the
/// appended transactions. Appends only ever grow supports, so a frequent
/// item outside `dirty` kept its exact support set and — because a clean
/// prefix tid-set contains no appended tid, while any newly frequent
/// rightward extension has fewer than `min_count` old tids — its whole
/// subtree re-emits the previous rows zero-extended, which is what
/// [`PatternPool::splice_rows`] bulk-copies. Dirty subtrees (including
/// newly frequent items, which are always dirty) are re-mined with the
/// same DFS as the full miner and spliced at their item's position in the
/// ascending first-item order, reproducing the serial emit sequence.
///
/// The returned [`PoolMineStats`] counts re-mined subtrees in `subtrees`;
/// spliced subtrees only show up in `splice_time`.
pub fn delta_pool_slab(
    index: &VerticalIndex,
    min_count: usize,
    max_len: usize,
    threads: usize,
    old_pool: &PatternPool,
    old_spans: &[(u32, std::ops::Range<u32>)],
    dirty: &[u32],
) -> (PatternPool, PoolMineStats) {
    let min_count = min_count.max(1);
    let universe = index.num_transactions();
    debug_assert!(
        dirty.windows(2).all(|w| w[0] < w[1]),
        "dirty must be sorted"
    );
    let frequent: Vec<(u32, &TidSet)> = (0..index.num_items())
        .filter_map(|i| {
            let t = index.item_tidset(i);
            (t.count() >= min_count).then_some((i, t))
        })
        .collect();

    let mut stats = PoolMineStats {
        workers: threads.max(1),
        ..Default::default()
    };
    if max_len == 0 || frequent.is_empty() {
        return (PatternPool::new(universe), stats);
    }

    // Plan each first-item subtree: splice the old span when the item is
    // clean, re-mine when dirty (or, defensively, when a clean item has no
    // old span — re-mining is always correct, splicing is the shortcut).
    // Both span list and frequent list ascend by item, so one merge walk
    // pairs them.
    enum Plan {
        Splice(std::ops::Range<u32>),
        Mine(usize),
    }
    let mut spans = old_spans.iter().peekable();
    let plans: Vec<Plan> = frequent
        .iter()
        .enumerate()
        .map(|(pos, &(item, _))| {
            while spans.peek().is_some_and(|&&(i, _)| i < item) {
                spans.next();
            }
            let span = match spans.peek() {
                Some((i, r)) if *i == item => Some(r.clone()),
                _ => None,
            };
            match span {
                Some(r) if dirty.binary_search(&item).is_err() => Plan::Splice(r),
                _ => Plan::Mine(pos),
            }
        })
        .collect();

    let t_mine = Instant::now();
    let mine_positions: Vec<usize> = plans
        .iter()
        .filter_map(|p| match p {
            Plan::Mine(pos) => Some(*pos),
            Plan::Splice(_) => None,
        })
        .collect();
    stats.subtrees = mine_positions.len();
    let frequent_ref = &frequent;
    let positions_ref = &mine_positions;
    let segments = run_tasks(mine_positions.len(), threads, |ti| {
        let pos = positions_ref[ti];
        let (item, tids) = frequent_ref[pos];
        let mut seg = PatternPool::new(universe);
        let mut prefix = vec![item];
        seg.push_tidset(&prefix, tids);
        dfs_slab(
            frequent_ref,
            pos,
            tids,
            &mut prefix,
            max_len,
            min_count,
            &mut seg,
        );
        seg
    });
    stats.mine_time = t_mine.elapsed();

    let t_splice = Instant::now();
    let rows = segments.iter().map(PatternPool::len).sum::<usize>()
        + plans
            .iter()
            .map(|p| match p {
                Plan::Splice(r) => r.len(),
                Plan::Mine(_) => 0,
            })
            .sum::<usize>();
    let mut pool = PatternPool::with_capacity(universe, rows);
    let mut seg_iter = segments.iter();
    for plan in &plans {
        match plan {
            Plan::Splice(r) => pool.splice_rows(old_pool, r.start as usize..r.end as usize),
            Plan::Mine(_) => pool.append_pool(seg_iter.next().expect("one segment per mine plan")),
        }
    }
    stats.splice_time = t_splice.elapsed();
    (pool, stats)
}

/// A support-stratified copy of a plain slab — the transform
/// [`initial_pool_slab_stratified`] applies after the parallel mine,
/// available separately so the incremental engine can keep the plain slab
/// (the next delta's splice source) and derive the sharded order on demand.
pub fn stratified_copy(pool: &PatternPool) -> PatternPool {
    pool.permuted(&pool.stratified_order())
}

/// [`initial_pool_slab`] in **support-stratified emit order**: ascending
/// support, itemset as the tie-break. The sharded fusion engine
/// (`cfp_core::shard`) consumes this order — shard assignment is keyed on
/// pattern content either way, but a stratified emission keeps every
/// shard's sub-pool support-contiguous (the order its ball index sorts by),
/// and makes round-robin stratum assignment independent of miner internals.
pub fn initial_pool_slab_stratified(
    db: &TransactionDb,
    min_count: usize,
    max_len: usize,
    threads: usize,
) -> (PatternPool, PoolMineStats) {
    let (pool, mut stats) = initial_pool_slab(db, min_count, max_len, threads);
    let t = Instant::now();
    let pool = pool.permuted(&pool.stratified_order());
    stats.splice_time += t.elapsed();
    (pool, stats)
}

/// Mines all frequent patterns of size ≤ `max_len` with their tid-sets.
///
/// The result is sorted lexicographically by itemset and is deterministic —
/// the owned-`Vec` view of [`initial_pool_slab`]'s rows (single-threaded;
/// the engine mines the slab directly).
pub fn initial_pool(db: &TransactionDb, min_count: usize, max_len: usize) -> Vec<PoolPattern> {
    let (pool, _) = initial_pool_slab(db, min_count, max_len, 1);
    materialize(&pool)
}

/// [`initial_pool`] in the stratified `(support asc, itemset)` order.
pub fn initial_pool_stratified(
    db: &TransactionDb,
    min_count: usize,
    max_len: usize,
) -> Vec<PoolPattern> {
    let mut pool = initial_pool(db, min_count, max_len);
    sort_stratified(&mut pool);
    pool
}

/// Sorts a pool into the stratified `(support asc, itemset)` order.
pub fn sort_stratified(pool: &mut [PoolPattern]) {
    pool.sort_by(|a, b| {
        a.support()
            .cmp(&b.support())
            .then_with(|| a.items.cmp(&b.items))
    });
}

fn materialize(pool: &PatternPool) -> Vec<PoolPattern> {
    (0..pool.len() as u32)
        .map(|r| PoolPattern {
            items: pool.itemset(r),
            tids: pool.tidset(r),
        })
        .collect()
}

/// One unit of the parallel mine. `Whole(i)` is first-item subtree `i`
/// (prefix `{i}` plus everything below). When a subtree's work estimate
/// dominates, it ships as `Head(i)` (the `{i}` row alone) followed by
/// `Sub(i, j)` for every rightward `j` (the `{i, j}` row plus its subtree —
/// empty when the depth-2 extension is infrequent). Spliced in task order,
/// both encodings produce the identical row sequence.
#[derive(Debug, Clone, Copy)]
enum SubtreeTask {
    Whole(usize),
    Head(usize),
    Sub(usize, usize),
}

fn dfs_slab(
    frequent: &[(u32, &TidSet)],
    pos: usize,
    tids: &TidSet,
    prefix: &mut Vec<u32>,
    max_len: usize,
    min_count: usize,
    seg: &mut PatternPool,
) {
    if prefix.len() >= max_len {
        return;
    }
    for (next_pos, &(item, item_tids)) in frequent.iter().enumerate().skip(pos + 1) {
        // Bounded counting first: the majority of extensions are infrequent
        // and die here without allocating an intersection.
        if tids
            .intersection_count_at_least(item_tids, min_count)
            .is_none()
        {
            continue;
        }
        let sub = tids.intersection(item_tids);
        prefix.push(item);
        seg.push_tidset(prefix, &sub);
        dfs_slab(frequent, next_pos, &sub, prefix, max_len, min_count, seg);
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::testutil::brute_frequent;

    #[test]
    fn pool_is_complete_up_to_max_len() {
        let db = cfp_datagen::diag(10);
        for max_len in 1..=3 {
            let pool = initial_pool(&db, 5, max_len);
            let want: Vec<_> = brute_frequent(&db, 5)
                .into_iter()
                .filter(|p| p.len() <= max_len)
                .collect();
            assert_eq!(pool.len(), want.len(), "max_len={max_len}");
            for (g, w) in pool.iter().zip(&want) {
                assert_eq!(g.items, w.items);
                assert_eq!(g.support(), w.support);
            }
        }
    }

    #[test]
    fn paper_diag40_pool_has_820_patterns() {
        // Figure 7: "Pattern-Fusion starts with an initial pool of 820
        // patterns of size ≤ 2" on Diag40 at support 20: 40 + C(40,2).
        let db = cfp_datagen::diag(40);
        let pool = initial_pool(&db, 20, 2);
        assert_eq!(pool.len(), 820);
    }

    #[test]
    fn tidsets_are_exact() {
        let db = cfp_datagen::quest(&cfp_datagen::QuestConfig {
            n_transactions: 150,
            n_items: 25,
            ..Default::default()
        });
        let index = VerticalIndex::new(&db);
        let pool = initial_pool(&db, 3, 3);
        assert!(!pool.is_empty());
        for p in &pool {
            assert_eq!(p.tids, index.tidset(&p.items), "{}", p.items);
        }
    }

    #[test]
    fn agrees_with_bounded_apriori() {
        let db = cfp_datagen::quest(&cfp_datagen::QuestConfig {
            n_transactions: 150,
            n_items: 25,
            ..Default::default()
        });
        let pool = initial_pool(&db, 3, 2);
        let mut apriori = crate::apriori_bounded(&db, 3, 2, &Budget::unlimited()).patterns;
        crate::types::sort_canonical(&mut apriori);
        assert_eq!(pool.len(), apriori.len());
        for (g, w) in pool.iter().zip(&apriori) {
            assert_eq!(g.items, w.items);
            assert_eq!(g.support(), w.support);
        }
    }

    #[test]
    fn zero_max_len_gives_empty_pool() {
        let db = cfp_datagen::diag(6);
        assert!(initial_pool(&db, 2, 0).is_empty());
        let (slab, _) = initial_pool_slab(&db, 2, 0, 4);
        assert!(slab.is_empty());
    }

    /// The tentpole contract: the parallel slab mine emits bit-for-bit the
    /// serial DFS sequence at every thread count.
    #[test]
    fn parallel_slab_matches_serial_at_any_thread_count() {
        let db = cfp_datagen::quest(&cfp_datagen::QuestConfig {
            n_transactions: 200,
            n_items: 30,
            ..Default::default()
        });
        for max_len in [1usize, 2, 3] {
            let (serial, _) = initial_pool_slab(&db, 3, max_len, 1);
            for threads in [2usize, 4, 8] {
                let (par, stats) = initial_pool_slab(&db, 3, max_len, threads);
                assert_eq!(par, serial, "threads={threads} max_len={max_len}");
                assert_eq!(stats.workers, threads);
            }
        }
    }

    #[test]
    fn stratified_slab_matches_stratified_vec() {
        let db = cfp_datagen::diag(14);
        let want = initial_pool_stratified(&db, 5, 2);
        for threads in [1usize, 4] {
            let (slab, _) = initial_pool_slab_stratified(&db, 5, 2, threads);
            assert_eq!(slab.len(), want.len());
            for (r, w) in want.iter().enumerate() {
                let r = r as u32;
                assert_eq!(slab.itemset(r), w.items, "row {r}");
                assert_eq!(slab.tidset(r), w.tids, "row {r}");
            }
        }
    }

    #[test]
    fn mine_stats_are_populated() {
        let db = cfp_datagen::diag(12);
        let (pool, stats) = initial_pool_slab(&db, 4, 2, 2);
        assert!(!pool.is_empty());
        assert_eq!(stats.subtrees, 12);
        assert_eq!(stats.workers, 2);
        // Diagonal supports are uniform: no subtree dominates, no split.
        assert_eq!(stats.split_subtrees, 0);
    }

    /// A database whose first item appears everywhere while the rest are
    /// sparse: subtree 0 dominates the work estimate.
    fn skewed_db() -> cfp_itemset::TransactionDb {
        let mut rows = Vec::new();
        for t in 0..60u32 {
            // Item 0 in every transaction; items 1..=12 in staggered
            // sparse bands so plenty of depth-2 and depth-3 patterns
            // survive under item 0 but each sibling subtree stays small.
            let mut items = vec![0u32];
            for j in 1..=12u32 {
                if (t + j) % 3 == 0 || t % (j + 2) == 0 {
                    items.push(j);
                }
            }
            rows.push(Itemset::from_items(&items));
        }
        cfp_itemset::TransactionDb::from_dense(rows)
    }

    /// The satellite contract: a skew-dominated first subtree is split one
    /// level deeper, and the split run still emits bit-for-bit the serial
    /// whole-subtree sequence at every thread count.
    #[test]
    fn skewed_subtree_is_split_and_stays_bit_identical() {
        let db = skewed_db();
        for max_len in [2usize, 3] {
            let (serial, serial_stats) = initial_pool_slab(&db, 4, max_len, 1);
            // Serial mining never splits (nothing to balance).
            assert_eq!(serial_stats.split_subtrees, 0);
            for threads in [2usize, 8] {
                let (par, stats) = initial_pool_slab(&db, 4, max_len, threads);
                assert!(
                    stats.split_subtrees >= 1,
                    "threads={threads} max_len={max_len}: dominant subtree not split"
                );
                assert_eq!(stats.subtrees, serial_stats.subtrees);
                assert_eq!(par, serial, "threads={threads} max_len={max_len}");
            }
        }
    }

    #[test]
    fn subtree_spans_cover_the_plain_slab() {
        let db = cfp_datagen::quest(&cfp_datagen::QuestConfig {
            n_transactions: 150,
            n_items: 25,
            ..Default::default()
        });
        let (pool, _) = initial_pool_slab(&db, 3, 3, 1);
        let spans = subtree_spans(&pool);
        // Spans are ascending by item, contiguous, and cover every row;
        // each opens with its singleton and owns every row whose first
        // item matches.
        let mut next = 0u32;
        for (item, range) in &spans {
            assert_eq!(range.start, next);
            assert_eq!(pool.items(range.start), &[*item]);
            for r in range.clone() {
                assert_eq!(pool.items(r)[0], *item, "row {r}");
            }
            next = range.end;
        }
        assert_eq!(next, pool.len() as u32);
        assert!(spans.windows(2).all(|w| w[0].0 < w[1].0));
    }

    /// The incremental contract: re-mining only the touched subtrees and
    /// splicing the rest reproduces the full miner on the grown database
    /// bit for bit — including when the delta makes a previously
    /// infrequent item frequent (its subtree appears mid-sequence) and
    /// introduces brand-new items.
    #[test]
    fn delta_pool_matches_full_remine() {
        let db = cfp_datagen::quest(&cfp_datagen::QuestConfig {
            n_transactions: 200,
            n_items: 30,
            ..Default::default()
        });
        let min_count = 4;
        for max_len in [2usize, 3] {
            let (old_pool, _) = initial_pool_slab(&db, min_count, max_len, 1);
            let spans = subtree_spans(&old_pool);
            // A delta touching a handful of items, one fresh label (40).
            let delta = cfp_itemset::DbDelta::from_transactions(vec![
                vec![0, 3, 7, 40],
                vec![3, 7],
                vec![7, 11, 40],
            ]);
            let mut grown = db.clone();
            let appended = grown.append_delta(&delta);
            let mut index = VerticalIndex::new(&db);
            index.absorb(&grown, appended);
            let mut dirty: Vec<u32> = delta
                .transactions()
                .iter()
                .flatten()
                .filter_map(|&l| grown.item_map().internal(l))
                .collect();
            dirty.sort_unstable();
            dirty.dedup();
            let (want, _) = initial_pool_slab(&grown, min_count, max_len, 1);
            for threads in [1usize, 2, 8] {
                let (got, stats) = delta_pool_slab(
                    &index, min_count, max_len, threads, &old_pool, &spans, &dirty,
                );
                assert_eq!(got, want, "threads={threads} max_len={max_len}");
                // Only the dirty subtrees were re-mined.
                assert!(stats.subtrees <= dirty.len());
            }
        }
    }

    /// An empty dirty set splices everything: the delta mine re-expands no
    /// subtree and still equals the full re-mine (which equals the old
    /// pool zero-extended).
    #[test]
    fn delta_pool_with_no_dirty_items_is_pure_splice() {
        let db = cfp_datagen::diag(14);
        let (old_pool, _) = initial_pool_slab(&db, 5, 2, 1);
        let spans = subtree_spans(&old_pool);
        let index = VerticalIndex::new(&db);
        let (got, stats) = delta_pool_slab(&index, 5, 2, 4, &old_pool, &spans, &[]);
        assert_eq!(stats.subtrees, 0);
        assert_eq!(got, old_pool);
    }

    #[test]
    fn stratified_copy_matches_stratified_miner() {
        let db = cfp_datagen::diag(12);
        let (plain, _) = initial_pool_slab(&db, 4, 2, 2);
        let (want, _) = initial_pool_slab_stratified(&db, 4, 2, 2);
        assert_eq!(stratified_copy(&plain), want);
    }

    /// The split decision is depth-gated: at `max_len == 1` there is no
    /// depth-2 row to split on, so even a skewed pool mines whole.
    #[test]
    fn split_is_disabled_at_depth_one() {
        let db = skewed_db();
        let (serial, _) = initial_pool_slab(&db, 4, 1, 1);
        let (par, stats) = initial_pool_slab(&db, 4, 1, 8);
        assert_eq!(stats.split_subtrees, 0);
        assert_eq!(par, serial);
    }
}
