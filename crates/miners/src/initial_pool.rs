//! Pattern-Fusion's initial pool: the complete set of small frequent
//! patterns, each carrying its support set.
//!
//! The paper (§2.3): "Pattern-Fusion assumes available an initial pool of
//! small frequent patterns, which is the complete set of frequent patterns up
//! to a small size, e.g., 3. This initial pool can be mined with any existing
//! efficient mining algorithm." We use a depth-bounded Eclat so every pool
//! entry keeps the tid-set Pattern-Fusion needs for distance computations and
//! fusion.
//!
//! Pool entries are *counted* patterns: every emitted [`TidSet`] carries its
//! cached cardinality, so downstream support reads (`PoolPattern::support`,
//! the ball-query engine's cardinality prune) are O(1) and never re-popcount.

use cfp_itemset::{Itemset, TidSet, TransactionDb, VerticalIndex};

/// A pool entry: a frequent pattern with its support set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolPattern {
    /// The pattern.
    pub items: Itemset,
    /// Its support set `D(α)`.
    pub tids: TidSet,
}

impl PoolPattern {
    /// Absolute support.
    pub fn support(&self) -> usize {
        self.tids.count()
    }
}

/// Mines all frequent patterns of size ≤ `max_len` with their tid-sets.
///
/// The result is sorted lexicographically by itemset and is deterministic.
pub fn initial_pool(db: &TransactionDb, min_count: usize, max_len: usize) -> Vec<PoolPattern> {
    let min_count = min_count.max(1);
    let index = VerticalIndex::new(db);
    let frequent: Vec<(u32, &TidSet)> = (0..db.num_items())
        .filter_map(|i| {
            let t = index.item_tidset(i);
            (t.count() >= min_count).then_some((i, t))
        })
        .collect();

    let mut pool = Vec::new();
    if max_len == 0 {
        return pool;
    }
    let mut prefix = Vec::new();
    for (pos, &(item, tids)) in frequent.iter().enumerate() {
        prefix.push(item);
        pool.push(PoolPattern {
            items: Itemset::from_items(&prefix),
            tids: tids.clone(),
        });
        dfs(
            &frequent,
            pos,
            tids,
            &mut prefix,
            max_len,
            min_count,
            &mut pool,
        );
        prefix.pop();
    }
    pool
}

/// [`initial_pool`] in **support-stratified emit order**: ascending support,
/// itemset as the tie-break. The sharded fusion engine
/// (`cfp_core::shard`) consumes this order — shard assignment is keyed on
/// pattern content either way, but a stratified emission keeps every
/// shard's sub-pool support-contiguous (the order its ball index sorts by),
/// and makes round-robin stratum assignment independent of miner internals.
pub fn initial_pool_stratified(
    db: &TransactionDb,
    min_count: usize,
    max_len: usize,
) -> Vec<PoolPattern> {
    let mut pool = initial_pool(db, min_count, max_len);
    sort_stratified(&mut pool);
    pool
}

/// Sorts a pool into the stratified `(support asc, itemset)` order.
pub fn sort_stratified(pool: &mut [PoolPattern]) {
    pool.sort_by(|a, b| {
        a.support()
            .cmp(&b.support())
            .then_with(|| a.items.cmp(&b.items))
    });
}

fn dfs(
    frequent: &[(u32, &TidSet)],
    pos: usize,
    tids: &TidSet,
    prefix: &mut Vec<u32>,
    max_len: usize,
    min_count: usize,
    pool: &mut Vec<PoolPattern>,
) {
    if prefix.len() >= max_len {
        return;
    }
    for (next_pos, &(item, item_tids)) in frequent.iter().enumerate().skip(pos + 1) {
        // Bounded counting first: the majority of extensions are infrequent
        // and die here without allocating an intersection.
        if tids
            .intersection_count_at_least(item_tids, min_count)
            .is_none()
        {
            continue;
        }
        let sub = tids.intersection(item_tids);
        prefix.push(item);
        pool.push(PoolPattern {
            items: Itemset::from_items(prefix),
            tids: sub.clone(),
        });
        dfs(frequent, next_pos, &sub, prefix, max_len, min_count, pool);
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::testutil::brute_frequent;

    #[test]
    fn pool_is_complete_up_to_max_len() {
        let db = cfp_datagen::diag(10);
        for max_len in 1..=3 {
            let pool = initial_pool(&db, 5, max_len);
            let want: Vec<_> = brute_frequent(&db, 5)
                .into_iter()
                .filter(|p| p.len() <= max_len)
                .collect();
            assert_eq!(pool.len(), want.len(), "max_len={max_len}");
            for (g, w) in pool.iter().zip(&want) {
                assert_eq!(g.items, w.items);
                assert_eq!(g.support(), w.support);
            }
        }
    }

    #[test]
    fn paper_diag40_pool_has_820_patterns() {
        // Figure 7: "Pattern-Fusion starts with an initial pool of 820
        // patterns of size ≤ 2" on Diag40 at support 20: 40 + C(40,2).
        let db = cfp_datagen::diag(40);
        let pool = initial_pool(&db, 20, 2);
        assert_eq!(pool.len(), 820);
    }

    #[test]
    fn tidsets_are_exact() {
        let db = cfp_datagen::quest(&cfp_datagen::QuestConfig {
            n_transactions: 150,
            n_items: 25,
            ..Default::default()
        });
        let index = VerticalIndex::new(&db);
        let pool = initial_pool(&db, 3, 3);
        assert!(!pool.is_empty());
        for p in &pool {
            assert_eq!(p.tids, index.tidset(&p.items), "{}", p.items);
        }
    }

    #[test]
    fn agrees_with_bounded_apriori() {
        let db = cfp_datagen::quest(&cfp_datagen::QuestConfig {
            n_transactions: 150,
            n_items: 25,
            ..Default::default()
        });
        let pool = initial_pool(&db, 3, 2);
        let mut apriori = crate::apriori_bounded(&db, 3, 2, &Budget::unlimited()).patterns;
        crate::types::sort_canonical(&mut apriori);
        assert_eq!(pool.len(), apriori.len());
        for (g, w) in pool.iter().zip(&apriori) {
            assert_eq!(g.items, w.items);
            assert_eq!(g.support(), w.support);
        }
    }

    #[test]
    fn zero_max_len_gives_empty_pool() {
        let db = cfp_datagen::diag(6);
        assert!(initial_pool(&db, 2, 0).is_empty());
    }
}
