//! TFP-style top-k closed-pattern mining with a length constraint.
//!
//! Wang et al.'s TFP returns the k closed patterns of highest support among
//! those of length ≥ `min_len`, raising its internal support threshold as
//! results accumulate. We realize the same semantics with a best-first
//! traversal of the closed-pattern tree (the ppc-extension tree of the
//! `closed` module): child support never exceeds parent support, so
//! expanding nodes in descending support order lets the run stop the moment
//! the frontier falls below the current k-th best support.

use crate::budget::{Budget, Outcome};
use crate::types::MinedPattern;
use cfp_itemset::{ClosureOperator, Itemset, TidSet, TransactionDb, VerticalIndex};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Mines the top-`k` closed frequent patterns of length ≥ `min_len` with
/// support ≥ `min_count`.
///
/// Pure TFP semantics take no support threshold (`min_count = 1`): the run
/// raises its internal threshold only as results accumulate. A higher floor
/// reproduces the paper's Figure 10 protocol, where TFP is swept across
/// minimum-support values.
///
/// Patterns are returned in descending support order (ties broken by the
/// itemset's lexicographic order for determinism). `Outcome::complete` is
/// `true` when the search proved no better pattern exists.
pub fn top_k_closed(
    db: &TransactionDb,
    k: usize,
    min_len: usize,
    min_count: usize,
    budget: &Budget,
) -> Outcome {
    let min_count = min_count.max(1);
    let mut nodes: u64 = 0;
    if k == 0 || db.is_empty() || db.len() < min_count {
        return Outcome::complete(Vec::new(), nodes);
    }
    let index = VerticalIndex::new(db);
    let cl = ClosureOperator::new(&index);

    // Frontier of unexpanded closed patterns, best support first.
    let mut frontier: BinaryHeap<Node> = BinaryHeap::new();
    let root_tids = TidSet::full(db.len());
    let root = cl.closure_of_tidset(&root_tids);
    frontier.push(Node {
        support: db.len(),
        items: root,
        tids: root_tids,
        core: None,
    });

    // Collected results: a min-heap of size ≤ k ordered by support.
    let mut best: BinaryHeap<std::cmp::Reverse<Ranked>> = BinaryHeap::new();
    let mut capped = false;

    while let Some(node) = frontier.pop() {
        nodes += 1;
        if nodes.is_multiple_of(64) && budget.exhausted(best.len(), nodes) {
            capped = true;
            break;
        }
        // Dynamic threshold: the k-th best support seen so far, floored by
        // the caller's minimum support.
        let threshold = if best.len() >= k {
            best.peek().map_or(min_count, |r| r.0 .0).max(min_count)
        } else {
            min_count
        };
        if node.support < threshold {
            break; // no frontier node can beat collected results
        }
        if node.items.len() >= min_len && node.support >= threshold {
            best.push(std::cmp::Reverse(Ranked(node.support, node.items.clone())));
            if best.len() > k {
                best.pop();
            }
        }
        // Expand by prefix-preserving closure extension.
        let start = node.core.map_or(0, |c| c + 1);
        for item in start..db.num_items() {
            if node.items.contains(item) {
                continue;
            }
            let sub = index.extend_tidset(&node.tids, item);
            let support = sub.count();
            // Children below the dynamic threshold can never contribute.
            let floor = if best.len() >= k {
                best.peek().map_or(min_count, |r| r.0 .0).max(min_count)
            } else {
                min_count
            };
            if support < floor {
                continue;
            }
            let q = cl.closure_of_tidset(&sub);
            if !prefix_preserved(&node.items, &q, item) {
                continue;
            }
            frontier.push(Node {
                support,
                items: q,
                tids: sub,
                core: Some(item),
            });
        }
    }

    let mut patterns: Vec<MinedPattern> = best
        .into_iter()
        .map(|r| MinedPattern::new(r.0 .1, r.0 .0))
        .collect();
    patterns.sort_by(|a, b| b.support.cmp(&a.support).then(a.items.cmp(&b.items)));
    if capped {
        Outcome::capped(patterns, nodes)
    } else {
        Outcome::complete(patterns, nodes)
    }
}

/// `q ∩ [0, item) == p ∩ [0, item)` given `p ⊆ q`.
fn prefix_preserved(p: &Itemset, q: &Itemset, item: u32) -> bool {
    let mut p_iter = p.iter().take_while(|&x| x < item);
    for x in q.iter().take_while(|&x| x < item) {
        if p_iter.next() != Some(x) {
            return false;
        }
    }
    true
}

/// Frontier node ordered by support (then reverse-lexicographic itemset so
/// ties expand deterministically).
struct Node {
    support: usize,
    items: Itemset,
    tids: TidSet,
    core: Option<u32>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.support == other.support && self.items == other.items
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        self.support
            .cmp(&other.support)
            .then_with(|| other.items.cmp(&self.items))
    }
}

/// Result entry ordered by (support, itemset).
#[derive(PartialEq, Eq)]
struct Ranked(usize, Itemset);

impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ranked {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.cmp(&other.0).then_with(|| other.1.cmp(&self.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed::closed;
    use crate::testutil::arb_small_db;
    use proptest::prelude::*;

    /// Reference: full closed mining, filter by length, take top k.
    fn reference_topk(db: &TransactionDb, k: usize, min_len: usize) -> Vec<MinedPattern> {
        let mut all = closed(db, 1, &Budget::unlimited()).patterns;
        all.retain(|p| p.items.len() >= min_len);
        all.sort_by(|a, b| b.support.cmp(&a.support).then(a.items.cmp(&b.items)));
        all.truncate(k);
        all
    }

    #[test]
    fn topk_matches_reference_on_small_example() {
        let db = TransactionDb::from_dense(vec![
            Itemset::from_items(&[0, 1, 3]),
            Itemset::from_items(&[1, 2, 4]),
            Itemset::from_items(&[0, 2, 4]),
            Itemset::from_items(&[0, 1, 2, 3, 4]),
        ]);
        for k in [1, 3, 5, 20] {
            for min_len in [1, 2, 3] {
                let got = top_k_closed(&db, k, min_len, 1, &Budget::unlimited()).patterns;
                let want = reference_topk(&db, k, min_len);
                assert_eq!(got.len(), want.len(), "k={k} len={min_len}");
                // Supports must match positionally (itemsets may tie).
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.support, w.support, "k={k} len={min_len}");
                    assert!(g.items.len() >= min_len);
                }
            }
        }
    }

    #[test]
    fn zero_k_returns_empty() {
        let db = cfp_datagen::diag(6);
        let out = top_k_closed(&db, 0, 1, 1, &Budget::unlimited());
        assert!(out.complete);
        assert!(out.patterns.is_empty());
    }

    #[test]
    fn min_len_filters_small_patterns() {
        let db = cfp_datagen::diag(8);
        let out = top_k_closed(&db, 10, 3, 1, &Budget::unlimited());
        assert!(out.patterns.iter().all(|p| p.items.len() >= 3));
        // In Diag8 the size-3 patterns have support 5 — the best possible
        // at length ≥ 3.
        assert!(out.patterns.iter().all(|p| p.support == 5));
    }

    #[test]
    fn support_floor_prunes_low_support_closed_patterns() {
        // Diag10 at floor 7: closed patterns of support < 7 (sizes > 3) are
        // never visited, so the run is complete and every result clears the
        // floor even though k is far larger than the qualifying set.
        let db = cfp_datagen::diag(10);
        let out = top_k_closed(&db, 1_000, 1, 7, &Budget::unlimited());
        assert!(out.complete);
        assert!(!out.patterns.is_empty());
        assert!(out.patterns.iter().all(|p| p.support >= 7));
        // Qualifying closed patterns: sizes 1..=3 → C(10,1)+C(10,2)+C(10,3).
        assert_eq!(out.patterns.len(), 10 + 45 + 120);
    }

    #[test]
    fn budget_caps_search() {
        let db = cfp_datagen::diag(18);
        let out = top_k_closed(&db, 500, 9, 1, &Budget::unlimited().with_max_nodes(1_000));
        assert!(!out.complete);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// Best-first top-k agrees with filter-then-truncate over the full
        /// closed set (support multisets must match).
        #[test]
        fn matches_reference_on_random_dbs((db, _min) in arb_small_db(), k in 1usize..8, min_len in 1usize..4) {
            let got = top_k_closed(&db, k, min_len, 1, &Budget::unlimited()).patterns;
            let want = reference_topk(&db, k, min_len);
            let gs: Vec<usize> = got.iter().map(|p| p.support).collect();
            let ws: Vec<usize> = want.iter().map(|p| p.support).collect();
            prop_assert_eq!(gs, ws);
            for g in &got {
                prop_assert!(g.items.len() >= min_len);
            }
        }
    }
}
