//! Baseline frequent-itemset miners.
//!
//! Pattern-Fusion (the paper's contribution, crate `cfp-core`) is evaluated
//! against exhaustive miners, and bootstraps itself from a complete set of
//! small frequent patterns. This crate provides from-scratch implementations
//! of all of them:
//!
//! * [`apriori`] / [`apriori_bounded`] — level-wise mining (Agrawal &
//!   Srikant), with tid-set candidate counting;
//! * [`eclat`] — depth-first vertical mining (Zaki);
//! * [`fp_growth`] — FP-tree pattern growth (Han, Pei & Yin);
//! * [`closed`] — LCM-style closed-pattern mining with prefix-preserving
//!   closure extension (behavioural stand-in for FPClose/LCM);
//! * [`maximal`] — maximal-pattern mining with look-ahead and fail-first
//!   ordering (behavioural stand-in for LCM_maximal/MAFIA);
//! * [`top_k_closed`] — TFP-style top-k closed mining with a minimum-length
//!   constraint and dynamic threshold raising;
//! * [`initial_pool_slab`] / [`initial_pool`] — the complete set of frequent
//!   patterns up to a small size, with support sets, as Pattern-Fusion's
//!   starting pool: a parallel DFS emitting straight into a columnar
//!   [`cfp_itemset::PatternPool`] slab (per-item subtrees on the
//!   work-stealing queue in [`parallel`], segments spliced in subtree order
//!   so the row sequence is thread-count-independent), with a `Vec` view
//!   for harnesses.
//!
//! The exhaustive miners deliberately explode on pathological inputs (that is
//! the paper's point); every one of them therefore accepts a [`Budget`] and
//! reports whether it completed, so experiment harnesses can cap them exactly
//! like the paper's "did not finish in 10 hours" runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apriori;
mod budget;
mod closed;
mod eclat;
mod fpgrowth;
mod fptree;
mod initial_pool;
mod maximal;
pub mod parallel;
mod topk;
mod types;

pub use apriori::{apriori, apriori_bounded};
pub use budget::{Budget, Outcome};
pub use closed::closed;
pub use eclat::eclat;
pub use fpgrowth::fp_growth;
pub use fptree::FpTree;
pub use initial_pool::{
    delta_pool_slab, initial_pool, initial_pool_slab, initial_pool_slab_stratified,
    initial_pool_stratified, sort_stratified, stratified_copy, subtree_spans, PoolMineStats,
    PoolPattern,
};
pub use maximal::maximal;
pub use topk::top_k_closed;
pub use types::{sort_canonical, MinedPattern};

#[cfg(test)]
pub(crate) mod testutil;
