//! Mining budgets and capped outcomes.
//!
//! The paper's experiments hinge on exhaustive miners *not finishing* —
//! FPClose and LCM ran for 10+ hours on `Diag40` before being killed. Rather
//! than killing processes, every exhaustive miner in this workspace checks a
//! [`Budget`] as it enumerates and stops cleanly, reporting a partial
//! [`Outcome`]; harnesses then print "budget exceeded" rows exactly where the
//! paper reports non-termination.

use crate::types::MinedPattern;
use std::time::{Duration, Instant};

/// A cooperative resource budget for a mining run.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    max_patterns: Option<usize>,
    max_nodes: Option<u64>,
}

impl Budget {
    /// No limits: run to completion.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Caps wall-clock time.
    pub fn with_time(mut self, limit: Duration) -> Self {
        self.deadline = Some(Instant::now() + limit);
        self
    }

    /// Caps the number of output patterns.
    pub fn with_max_patterns(mut self, limit: usize) -> Self {
        self.max_patterns = Some(limit);
        self
    }

    /// Caps the number of search-tree nodes visited.
    pub fn with_max_nodes(mut self, limit: u64) -> Self {
        self.max_nodes = Some(limit);
        self
    }

    /// Whether the run must stop now. Called by miners on every node.
    pub(crate) fn exhausted(&self, patterns: usize, nodes: u64) -> bool {
        if let Some(m) = self.max_patterns {
            if patterns >= m {
                return true;
            }
        }
        if let Some(m) = self.max_nodes {
            if nodes >= m {
                return true;
            }
        }
        if let Some(d) = self.deadline {
            // Checking the clock on every node would dominate tiny workloads;
            // miners amortize by checking every few hundred nodes.
            if Instant::now() >= d {
                return true;
            }
        }
        false
    }
}

/// The result of a budgeted mining run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Patterns found before completion or cap.
    pub patterns: Vec<MinedPattern>,
    /// `true` iff the miner enumerated its entire search space.
    pub complete: bool,
    /// Search-tree nodes visited (a machine-independent work measure).
    pub nodes_visited: u64,
}

impl Outcome {
    pub(crate) fn complete(patterns: Vec<MinedPattern>, nodes_visited: u64) -> Self {
        Self {
            patterns,
            complete: true,
            nodes_visited,
        }
    }

    pub(crate) fn capped(patterns: Vec<MinedPattern>, nodes_visited: u64) -> Self {
        Self {
            patterns,
            complete: false,
            nodes_visited,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let b = Budget::unlimited();
        assert!(!b.exhausted(usize::MAX - 1, u64::MAX - 1));
    }

    #[test]
    fn pattern_cap_trips() {
        let b = Budget::unlimited().with_max_patterns(10);
        assert!(!b.exhausted(9, 0));
        assert!(b.exhausted(10, 0));
    }

    #[test]
    fn node_cap_trips() {
        let b = Budget::unlimited().with_max_nodes(100);
        assert!(!b.exhausted(0, 99));
        assert!(b.exhausted(0, 100));
    }

    #[test]
    fn deadline_trips_after_elapse() {
        let b = Budget::unlimited().with_time(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        assert!(b.exhausted(0, 0));
    }
}
