//! Shared miner output types.

use cfp_itemset::Itemset;
use std::fmt;

/// A mined frequent pattern with its absolute support.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct MinedPattern {
    /// The pattern.
    pub items: Itemset,
    /// Absolute support `|D(α)|`.
    pub support: usize,
}

impl MinedPattern {
    /// Convenience constructor.
    pub fn new(items: Itemset, support: usize) -> Self {
        Self { items, support }
    }

    /// Pattern cardinality |α|.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the pattern is empty (never produced by the miners).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl fmt::Debug for MinedPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.items, self.support)
    }
}

/// Sorts patterns canonically (lexicographic by itemset) — used by tests and
/// harnesses to compare miner outputs.
pub fn sort_canonical(patterns: &mut [MinedPattern]) {
    patterns.sort_by(|a, b| a.items.cmp(&b.items));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_format_is_compact() {
        let p = MinedPattern::new(Itemset::from_items(&[2, 1]), 7);
        assert_eq!(format!("{p:?}"), "(1 2):7");
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn canonical_sort_is_lexicographic() {
        let mut v = vec![
            MinedPattern::new(Itemset::from_items(&[2]), 1),
            MinedPattern::new(Itemset::from_items(&[1, 3]), 1),
            MinedPattern::new(Itemset::from_items(&[1]), 1),
        ];
        sort_canonical(&mut v);
        let names: Vec<String> = v.iter().map(|p| p.items.to_string()).collect();
        assert_eq!(names, vec!["(1)", "(1 3)", "(2)"]);
    }
}
