//! `cfp` — command-line colossal-pattern mining on FIMI `.dat` files.
//!
//! ```text
//! cfp mine <file.dat> [--minsup FRAC | --mincount N] [--k N] [--tau T]
//!          [--pool-len L] [--seed S] [--closure] [--stats]
//!          [--shards N] [--shard-strategy stratum|minhash]
//!          [--mem-budget BYTES] [--pool SLAB] [--append FILE]
//! cfp dump <file.dat> --out <pool.slab> [--minsup FRAC | --mincount N]
//!          [--pool-len L] [--threads N]
//! cfp load <pool.slab>
//! cfp stats <file.dat>
//! cfp generate <diag|diag-plus|replace|all|quest> [--out FILE] [--seed S]
//! ```
//!
//! `mine` runs Pattern-Fusion and prints the mined patterns (external item
//! labels) with sizes and supports; `--mem-budget` (or `CFP_MEM_BUDGET`)
//! routes it through the out-of-core driver, and `--executor` (or
//! `CFP_EXECUTOR`) picks the shard execution backend — `thread` (default),
//! `oocore`, or `process` (one `cfp shard-worker` OS process per shard;
//! bit-identical output either way). `dump` mines just the initial
//! pool and persists it as a `CFPSLAB` binary slab; `load` validates a slab
//! and summarizes it; `mine --pool` starts fusion from a dumped slab
//! instead of re-mining. `stats` summarizes a dataset. `generate` writes
//! one of the paper's workloads in FIMI format.
//!
//! There is also a hidden `shard-worker` subcommand — the child half of the
//! subprocess executor's worker protocol (see the CFPSLAB spec in
//! `cfp_itemset::store`). It is spawned by the parent `cfp mine
//! --executor process`, not by people, so it stays out of the usage text.

use colossal::fusion::env as cfp_env;
use colossal::fusion::executor::run_shard_worker;
use colossal::fusion::net;
use colossal::fusion::oocore::{parse_budget, OocoreConfig};
use colossal::fusion::{
    serve_queries, ExecutorKind, FusionConfig, FusionResult, HostOptions, QueryClient,
    RemoteConfig, ServeOptions, Source, SubprocessConfig, WorkerError, WorkerRequest,
};
use colossal::itemset::slab_io;
use colossal::itemset::{read_fimi, write_fimi, TransactionDb};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // Validate every CFP_* variable up front: a malformed CFP_SHARDS /
    // CFP_MEM_BUDGET / CFP_NET_TIMEOUT / ... is a clean typed error here,
    // not a library panic halfway into a mine (or, worse, a silently
    // ignored knob) — in particular, CFP_FAULT on a build without the
    // fault-inject feature is an error, never a silently honored no-op.
    if let Err(e) = cfp_env::validate_all() {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let result = match command.as_str() {
        "mine" => cmd_mine(&args[1..]),
        "dump" => cmd_dump(&args[1..]),
        "load" => cmd_load(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "generate" => cmd_generate(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "shard-host" => cmd_shard_host(&args[1..]),
        // Hidden: the subprocess executor's worker half, with its own
        // protocol exit codes (0 ok, 2 slab I/O, 3 request/dataset).
        "shard-worker" => return cmd_shard_worker(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "cfp — colossal frequent pattern mining (Pattern-Fusion, ICDE 2007)

usage:
  cfp mine <file.dat> [options]      mine colossal patterns from a FIMI file
      --minsup FRAC    relative minimum support in (0,1]   [default 0.05]
      --mincount N     absolute minimum support (overrides --minsup)
      --k N            maximum number of patterns          [default 50]
      --tau T          core ratio τ in (0,1]               [default 0.5]
      --pool-len L     initial pool size bound             [default 3]
      --seed S         RNG seed                            [default 2007]
      --closure        close fused patterns (report closed patterns)
      --shards N       sharded engine: partition the pool into N shards
                       (overrides CFP_SHARDS; 1 = unsharded)  [default 1]
      --shard-strategy stratum|minhash
                       partition strategy (overrides CFP_SHARD_STRATEGY)
      --mem-budget B   mine out of core, bounding resident slab bytes per
                       fusion pass to B (suffixes k/m/g; 0 = spill but one
                       pass; overrides CFP_MEM_BUDGET; bit-identical output)
      --executor E     shard execution backend: thread | oocore | process
                       | remote (overrides CFP_EXECUTOR; process spawns
                       one cfp shard-worker per shard, remote streams each
                       shard to a cfp shard-host over TCP; bit-identical
                       output; CFP_EXECUTOR_FALLBACK=1 re-runs a dead
                       worker's shard in-process instead of failing, =0
                       disables the remote executor's default fallback)
      --workers LIST   remote executor worker addresses, comma-separated
                       host:port (overrides CFP_WORKERS); deadlines and
                       retries via CFP_NET_TIMEOUT (ms) / CFP_NET_ATTEMPTS
      --spill-dir D    spill/work directory for oocore and process runs
                       (must be empty; kept only with --keep-spill)
      --keep-spill     keep the spill/work directory after the run
      --pool SLAB      start from a dumped CFPSLAB pool instead of re-mining
      --append FILE    mine <file.dat>, then absorb FILE (FIMI, one appended
                       transaction per line) incrementally — bit-identical
                       to re-mining the concatenation, at delta cost. A
                       relative --minsup resolves against the *base* file
                       (appends must not re-price old patterns; use
                       --mincount for an explicit absolute threshold)
      --stats          print per-iteration (and per-shard) statistics
  cfp dump <file.dat> --out <pool.slab>
                       mine the initial pool and persist it as a binary slab
      --minsup/--mincount/--pool-len as for mine; --threads N mine workers
  cfp load <pool.slab>               validate a dumped slab and summarize it
  cfp stats <file.dat>               dataset summary
  cfp serve <file.dat> [options]     mine once, then serve pattern queries
                                     over TCP (query protocol v3; concurrent
                                     long-lived connections; `reload` re-mines
                                     in the background and swaps epochs
                                     without blocking readers)
      --minsup/--mincount/--k/--tau/--pool-len/--seed/--closure as for mine
      --bind ADDR      listen address                 [default 127.0.0.1:0]
      --max-conns N    serve N connections, then exit [default: forever]
      --io-timeout MS  socket deadline (also CFP_NET_TIMEOUT) [default 60000]
      --verbose        log per-connection failures to stderr
      (prints the bound address on stdout once listening)
  cfp query <host:port> <verb> [key=value ...]
                                     one v3 request against a cfp serve
                                     daemon; body lines print on stdout
      verbs: topk [k=N] [tids=1] [session=S]      top-K colossal patterns
             lookup items=a,b,c [session=S]       exact support lookup
             contain items=a,b,c [limit=N]        patterns containing items
             similar tids=t1,t2,...               ball query for a tid-set
             put session=S items=... tids=...     intern into a session
             append txns=1,2;3,4 [wait=1]         absorb appended transactions
                                                  (incremental re-mine; the new
                                                  epoch is bit-identical to a
                                                  cold mine of the grown data)
             stats | reload [seed=N] [wait=1] | bye
      --timeout MS     socket deadline             [default 10000]
  cfp shard-host [options]           serve shards to remote coordinators
      --bind ADDR      listen address                 [default 127.0.0.1:0]
      --max-conns N    serve N connections, then exit [default: forever]
      --heartbeat MS   mine-phase heartbeat cadence   [default 500]
      --io-timeout MS  socket deadline (also CFP_NET_TIMEOUT) [default 60000]
      --verbose        log per-connection failures to stderr
      (prints the bound address on stdout once listening)
  cfp generate <kind> [--out FILE] [--seed S]
      kinds: diag40, diag-plus (the intro's Diag40+20), replace, all, quest";

fn parse_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse_value<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, String> {
    for w in args.windows(2) {
        if w[0] == name {
            return w[1]
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value '{}' for {name}", w[1]));
        }
    }
    Ok(None)
}

fn load(path: &str) -> Result<TransactionDb, String> {
    read_fimi(path).map_err(|e| format!("reading {path}: {e}"))
}

fn cmd_mine(args: &[String]) -> Result<(), String> {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        return Err("mine: missing <file.dat>".into());
    };
    let db = load(path)?;
    if db.is_empty() {
        return Err("dataset has no transactions".into());
    }

    let min_count = match parse_value::<usize>(args, "--mincount")? {
        Some(c) => c,
        None => {
            let frac = parse_value::<f64>(args, "--minsup")?.unwrap_or(0.05);
            db.min_support(frac).map_err(|e| e.to_string())?.count()
        }
    };
    let k = parse_value::<usize>(args, "--k")?.unwrap_or(50);
    let tau = parse_value::<f64>(args, "--tau")?.unwrap_or(0.5);
    let pool_len = parse_value::<usize>(args, "--pool-len")?.unwrap_or(3);
    let seed = parse_value::<u64>(args, "--seed")?.unwrap_or(2007);
    if !(tau > 0.0 && tau <= 1.0) {
        return Err(format!("--tau {tau} outside (0, 1]"));
    }

    eprintln!(
        "mining {path}: {} transactions, {} items, min support {min_count}, K={k}, τ={tau}",
        db.len(),
        db.num_items()
    );
    // `--shards N` / `--shard-strategy stratum|minhash` override the
    // CFP_SHARDS / CFP_SHARD_STRATEGY environment defaults.
    let mut config = FusionConfig::new(k, min_count)
        .with_tau(tau)
        .with_pool_max_len(pool_len)
        .with_seed(seed)
        .with_closure_step(parse_flag(args, "--closure"));
    if let Some(shards) = parse_value::<usize>(args, "--shards")? {
        config = config.with_shards(shards);
    }
    if let Some(name) = parse_value::<String>(args, "--shard-strategy")? {
        let strategy = colossal::fusion::ShardStrategy::parse(&name)
            .ok_or_else(|| format!("unknown --shard-strategy '{name}' (stratum|minhash)"))?;
        config = config.with_shard_strategy(strategy);
    }
    // `--mem-budget B` (or the CFP_MEM_BUDGET environment default) routes
    // the run through the out-of-core driver — same output, bounded
    // resident slab bytes. `--pool SLAB` starts from a dumped pool slab,
    // used as-is: the file must come from the same dataset, and because
    // sharded runs mine their own pools in support-stratified order, a
    // plain dump's row order (hence its deterministic tie-breaks) can
    // differ from a fresh `run()`. Output is deterministic per slab —
    // with and without a budget it is bit-identical for the same slab.
    let budget = match parse_value::<String>(args, "--mem-budget")? {
        Some(s) => Some(parse_budget(&s).ok_or_else(|| {
            format!("invalid --mem-budget '{s}' (bytes, with optional k/m/g suffix)")
        })?),
        None => cfp_env::mem_budget().map_err(|e| e.to_string())?,
    };
    let spill_dir = parse_value::<String>(args, "--spill-dir")?;
    let keep_spill = parse_flag(args, "--keep-spill");
    let make_oo = |b: u64| {
        let mut oo = OocoreConfig::new(b).with_keep_spill(keep_spill);
        if let Some(d) = &spill_dir {
            oo = oo.with_spill_dir(d);
        }
        oo
    };
    // `--executor` / CFP_EXECUTOR picks the shard execution backend.
    // Unknown names are hard errors; an explicit executor wins over the
    // legacy `--mem-budget → oocore` routing (the budget still feeds the
    // oocore backend's config).
    let parsed_executor = match parse_value::<String>(args, "--executor")? {
        Some(name) => Some(ExecutorKind::parse(&name).ok_or_else(|| {
            format!("unknown --executor '{name}' (thread|oocore|process|remote)")
        })?),
        None => cfp_env::executor().map_err(|e| e.to_string())?,
    };
    let fallback = cfp_env::executor_fallback().map_err(|e| e.to_string())?;
    let executor = parsed_executor
        .map(|parsed| {
            Ok::<ExecutorKind, String>(match parsed {
                ExecutorKind::OutOfCore(_) => ExecutorKind::OutOfCore(make_oo(budget.unwrap_or(0))),
                ExecutorKind::Subprocess(_) => {
                    // Workers re-read the dataset (needed only for
                    // --closure); worker death falls back in-process when
                    // CFP_EXECUTOR_FALLBACK=1.
                    let mut sp = SubprocessConfig::new()
                        .with_db_path(path)
                        .with_keep_work(keep_spill);
                    if let Some(d) = &spill_dir {
                        sp = sp.with_work_dir(d);
                    }
                    if fallback == Some(true) {
                        sp = sp.with_fallback_in_process(true);
                    }
                    ExecutorKind::Subprocess(sp)
                }
                ExecutorKind::Remote(_) => {
                    // Worker fleet from --workers / CFP_WORKERS; deadlines
                    // and attempt budget from the CFP_NET_* environment
                    // (validated in main); deterministic fault schedule
                    // from CFP_FAULT when compiled in. Fallback is on by
                    // default for remote — CFP_EXECUTOR_FALLBACK=0 turns a
                    // retry-exhausted shard into a typed error instead.
                    let workers = match parse_value::<String>(args, "--workers")? {
                        Some(list) => {
                            let ws: Vec<String> = list
                                .split(',')
                                .map(|w| w.trim().to_string())
                                .filter(|w| !w.is_empty())
                                .collect();
                            (!ws.is_empty()).then_some(ws)
                        }
                        None => cfp_env::workers().map_err(|e| e.to_string())?,
                    };
                    let mut rc = RemoteConfig::new()
                        .with_workers(workers.ok_or(
                            "--executor remote needs --workers host:port,... or CFP_WORKERS",
                        )?)
                        .with_keep_work(keep_spill)
                        .with_fault(net::FaultPlan::from_env());
                    if let Some(d) = &spill_dir {
                        rc = rc.with_work_dir(d);
                    }
                    if fallback == Some(false) {
                        rc = rc.with_fallback_in_thread(false);
                    }
                    ExecutorKind::Remote(rc)
                }
                ExecutorKind::InThread => ExecutorKind::InThread,
            })
        })
        .transpose()?;
    // A plain `--mem-budget` (no explicit executor) is sugar for the
    // out-of-core backend; an explicit executor wins, with the budget
    // already folded into its config above.
    let executor = executor.or_else(|| budget.map(|b| ExecutorKind::OutOfCore(make_oo(b))));
    let source = match parse_value::<String>(args, "--pool")? {
        Some(p) => Source::SlabFile(p.into()),
        None => Source::Transactions,
    };

    // `--append FILE` routes through the incremental delta driver
    // (`cfp_core::delta`): the base file is mined, the appended
    // transactions absorbed at delta cost, and the printed result is
    // bit-identical to mining the concatenated file from scratch.
    if let Some(delta_path) = parse_value::<String>(args, "--append")? {
        if matches!(source, Source::SlabFile(_)) {
            return Err("--append cannot start from a dumped --pool slab".into());
        }
        if executor.is_some() {
            return Err("--append runs in-process (drop --executor / --mem-budget)".into());
        }
        let delta = colossal::itemset::DbDelta::read_fimi(&delta_path)
            .map_err(|e| format!("reading {delta_path}: {e}"))?;
        let mut engine = colossal::fusion::DeltaEngine::new(db, config);
        let t0 = std::time::Instant::now();
        let result = engine.append(&delta);
        let s = engine.last_append();
        eprintln!(
            "mined {} patterns in {:.3}s (pool {}, {} iterations)",
            result.patterns.len(),
            t0.elapsed().as_secs_f64(),
            result.stats.initial_pool_size,
            result.stats.total_iterations()
        );
        eprintln!(
            "  append: {} transactions from {delta_path}, {} dirty item(s), \
             {} subtree(s) re-mined, {} of {} pool rows spliced, ball index {} \
             ({:.3}s incremental)",
            s.appended_transactions,
            s.dirty_items,
            s.subtrees_remined,
            s.rows_spliced,
            s.pool_rows,
            if s.index_carried {
                "carried"
            } else {
                "rebuilt"
            },
            s.elapsed.as_secs_f64(),
        );
        for p in &result.patterns {
            let labels = engine.db().item_map().externalize(p.items.items());
            let rendered: Vec<String> = labels.iter().map(u32::to_string).collect();
            println!("{}\t{}\t{}", p.len(), p.support(), rendered.join(" "));
        }
        return Ok(());
    }

    let mut engine = config.engine(&db);
    if let Some(ex) = executor {
        engine = engine.with_executor(ex);
    }
    let t0 = std::time::Instant::now();
    let result: FusionResult = engine.mine(source).map_err(|e| e.to_string())?;
    eprintln!(
        "mined {} patterns in {:.3}s (pool {}, {} iterations)",
        result.patterns.len(),
        t0.elapsed().as_secs_f64(),
        result.stats.initial_pool_size,
        result.stats.total_iterations()
    );
    if parse_flag(args, "--stats") {
        let pool = &result.stats.pool;
        eprintln!(
            "  pool: {} rows ({} mined), {:.1} KiB tids / {:.1} KiB peak slab, \
             mined on {} worker(s) in {:.3}s (+{:.3}s splice)",
            pool.rows,
            pool.initial_rows,
            pool.tid_bytes as f64 / 1024.0,
            pool.peak_bytes as f64 / 1024.0,
            pool.mine_workers,
            pool.mine_time.as_secs_f64(),
            pool.splice_time.as_secs_f64()
        );
        for (i, it) in result.stats.iterations.iter().enumerate() {
            eprintln!(
                "  iter {i}: pool {} → {} patterns (sizes {}..{}) in {:.3}s",
                it.pool_size,
                it.generated,
                it.min_pattern_len,
                it.max_pattern_len,
                it.elapsed.as_secs_f64()
            );
        }
        for s in &result.stats.shards {
            eprintln!(
                "  shard {}: pool {} → {} patterns, {} iterations{} in {:.3}s",
                s.shard,
                s.pool_size,
                s.patterns,
                s.iterations,
                if s.converged { "" } else { " (cap)" },
                s.elapsed.as_secs_f64()
            );
        }
        if result.stats.sharded() {
            eprintln!(
                "  merge: {} boundary-repair iterations",
                result.stats.repair_iterations
            );
        }
        let netstats = &result.stats.net;
        if netstats.active() {
            eprintln!(
                "  net: {} shard(s) dispatched in {} attempt(s) ({} retried, {} fell back \
                 in-thread), {:.1} KiB sent / {:.1} KiB received, {} heartbeat(s), \
                 {:.3}s backoff",
                netstats.shards_dispatched,
                netstats.attempts,
                netstats.retries,
                netstats.fallbacks,
                netstats.bytes_sent as f64 / 1024.0,
                netstats.bytes_received as f64 / 1024.0,
                netstats.heartbeats,
                netstats.backoff_total.as_secs_f64(),
            );
        }
        let oo = &result.stats.oocore;
        if oo.active() {
            eprintln!(
                "  oocore: {} pass(es) over {} spilled shard(s), {:.1} KiB spilled in \
                 {:.3}s, {:.1} KiB loaded in {:.3}s, peak resident {:.1} KiB \
                 (budget {}), bytes touched {:.2}x the in-memory slab",
                oo.passes,
                oo.shards_spilled,
                oo.spill_bytes as f64 / 1024.0,
                oo.spill_time.as_secs_f64(),
                oo.load_bytes as f64 / 1024.0,
                oo.load_time.as_secs_f64(),
                oo.peak_resident_bytes as f64 / 1024.0,
                if oo.budget_bytes == 0 {
                    "unlimited".to_string()
                } else {
                    format!("{:.1} KiB", oo.budget_bytes as f64 / 1024.0)
                },
                oo.bytes_touched_ratio(),
            );
        }
    }
    for p in &result.patterns {
        let labels = db.item_map().externalize(p.items.items());
        let rendered: Vec<String> = labels.iter().map(u32::to_string).collect();
        println!("{}\t{}\t{}", p.len(), p.support(), rendered.join(" "));
    }
    Ok(())
}

fn cmd_dump(args: &[String]) -> Result<(), String> {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        return Err("dump: missing <file.dat>".into());
    };
    let out = parse_value::<String>(args, "--out")?.ok_or("dump: missing --out <pool.slab>")?;
    let db = load(path)?;
    if db.is_empty() {
        return Err("dataset has no transactions".into());
    }
    let min_count = match parse_value::<usize>(args, "--mincount")? {
        Some(c) => c,
        None => {
            let frac = parse_value::<f64>(args, "--minsup")?.unwrap_or(0.05);
            db.min_support(frac).map_err(|e| e.to_string())?.count()
        }
    };
    let pool_len = parse_value::<usize>(args, "--pool-len")?.unwrap_or(3);
    let threads = match parse_value::<usize>(args, "--threads")? {
        Some(t) => t.max(1),
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    };
    let t0 = std::time::Instant::now();
    let (pool, stats) = colossal::miners::initial_pool_slab(&db, min_count, pool_len, threads);
    let bytes = slab_io::dump_slab_path(&pool, &out).map_err(|e| format!("writing {out}: {e}"))?;
    eprintln!(
        "dumped {} pool patterns (size ≤ {pool_len}, min support {min_count}) to {out}: \
         {:.1} KiB in {:.3}s ({} mine workers)",
        pool.len(),
        bytes as f64 / 1024.0,
        t0.elapsed().as_secs_f64(),
        stats.workers,
    );
    Ok(())
}

fn cmd_load(args: &[String]) -> Result<(), String> {
    let Some(path) = args.first() else {
        return Err("load: missing <pool.slab>".into());
    };
    let pool = slab_io::load_slab_path(path).map_err(|e| format!("loading {path}: {e}"))?;
    println!("pool rows:         {}", pool.len());
    println!("universe (txns):   {}", pool.universe());
    println!("resident bytes:    {}", pool.resident_bytes());
    println!("tid bytes:         {}", pool.tid_bytes());
    if !pool.is_empty() {
        let supports: Vec<usize> = (0..pool.len() as u32).map(|r| pool.support(r)).collect();
        let sizes: Vec<usize> = (0..pool.len() as u32)
            .map(|r| pool.items(r).len())
            .collect();
        println!(
            "support range:     {}..={}",
            supports.iter().min().unwrap(),
            supports.iter().max().unwrap()
        );
        println!(
            "pattern sizes:     {}..={}",
            sizes.iter().min().unwrap(),
            sizes.iter().max().unwrap()
        );
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let Some(path) = args.first() else {
        return Err("stats: missing <file.dat>".into());
    };
    let db = load(path)?;
    println!("transactions:      {}", db.len());
    println!("distinct items:    {}", db.num_items());
    println!("item occurrences:  {}", db.total_occurrences());
    println!("avg txn length:    {:.2}", db.avg_transaction_len());
    let idx = colossal::itemset::VerticalIndex::new(&db);
    let mut supports = idx.item_supports();
    supports.sort_unstable_by(|a, b| b.cmp(a));
    if !supports.is_empty() {
        println!("max item support:  {}", supports[0]);
        println!("median support:    {}", supports[supports.len() / 2]);
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let Some(kind) = args.first() else {
        return Err("generate: missing <kind>".into());
    };
    let seed = parse_value::<u64>(args, "--seed")?.unwrap_or(1);
    let db = match kind.as_str() {
        "diag40" => colossal::datagen::diag(40),
        "diag-plus" => colossal::datagen::diag_plus(40, 20, 39),
        "replace" => {
            let cfg = colossal::datagen::ReplaceConfig {
                seed,
                ..Default::default()
            };
            colossal::datagen::replace_like(&cfg).db
        }
        "all" => {
            let cfg = colossal::datagen::AllLikeConfig {
                seed,
                ..Default::default()
            };
            colossal::datagen::all_like(&cfg).db
        }
        "quest" => {
            let cfg = colossal::datagen::QuestConfig {
                seed,
                ..Default::default()
            };
            colossal::datagen::quest(&cfg)
        }
        other => return Err(format!("unknown kind '{other}' (see --help)")),
    };
    match parse_value::<String>(args, "--out")? {
        Some(path) => {
            let mut f = std::fs::File::create(&path).map_err(|e| e.to_string())?;
            write_fimi(&db, &mut f).map_err(|e| e.to_string())?;
            eprintln!("wrote {} transactions to {path}", db.len());
        }
        None => {
            let mut out = std::io::stdout();
            write_fimi(&db, &mut out).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// The `serve` subcommand — mines the dataset once through the engine
/// facade, then serves v3 pattern-query traffic on long-lived connections
/// (see `cfp_core::serve`). Announces the bound address on stdout so
/// scripts can scrape an OS-assigned port.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        return Err("serve: missing <file.dat>".into());
    };
    let db = load(path)?;
    if db.is_empty() {
        return Err("dataset has no transactions".into());
    }
    let min_count = match parse_value::<usize>(args, "--mincount")? {
        Some(c) => c,
        None => {
            let frac = parse_value::<f64>(args, "--minsup")?.unwrap_or(0.05);
            db.min_support(frac).map_err(|e| e.to_string())?.count()
        }
    };
    let k = parse_value::<usize>(args, "--k")?.unwrap_or(50);
    let tau = parse_value::<f64>(args, "--tau")?.unwrap_or(0.5);
    if !(tau > 0.0 && tau <= 1.0) {
        return Err(format!("--tau {tau} outside (0, 1]"));
    }
    let config = FusionConfig::new(k, min_count)
        .with_tau(tau)
        .with_pool_max_len(parse_value::<usize>(args, "--pool-len")?.unwrap_or(3))
        .with_seed(parse_value::<u64>(args, "--seed")?.unwrap_or(2007))
        .with_closure_step(parse_flag(args, "--closure"));

    let bind = parse_value::<String>(args, "--bind")?.unwrap_or_else(|| "127.0.0.1:0".into());
    let listener =
        std::net::TcpListener::bind(&bind).map_err(|e| format!("binding {bind}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let mut opts = ServeOptions::default().with_verbose(parse_flag(args, "--verbose"));
    if let Some(n) = parse_value::<usize>(args, "--max-conns")? {
        opts = opts.with_max_conns(n);
    }
    match parse_value::<u64>(args, "--io-timeout")? {
        Some(ms) => opts = opts.with_io_timeout(std::time::Duration::from_millis(ms.max(1))),
        None => {
            if let Some(t) = net::timeout_from_env() {
                opts = opts.with_io_timeout(t);
            }
        }
    }
    eprintln!(
        "serving {path}: {} transactions, {} items, min support {min_count}, K={k}, τ={tau}",
        db.len(),
        db.num_items()
    );
    println!("cfp serve listening on {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    serve_queries(listener, &db, config, &opts).map_err(|e| format!("serve: {e}"))
}

/// The `query` subcommand — one v3 request against a `cfp serve` daemon.
/// Fields are the trailing `key=value` arguments; the reply's body lines
/// print on stdout (the answering epoch goes to stderr).
fn cmd_query(args: &[String]) -> Result<(), String> {
    let Some(addr) = args.first().filter(|a| !a.starts_with("--")) else {
        return Err("query: missing <host:port>".into());
    };
    let Some(verb) = args.get(1).filter(|a| !a.starts_with("--")) else {
        return Err("query: missing <verb>".into());
    };
    let timeout = parse_value::<u64>(args, "--timeout")?.unwrap_or(10_000);
    let mut fields: Vec<(&str, &str)> = Vec::new();
    for arg in &args[2..] {
        if arg.starts_with("--") {
            continue;
        }
        // Fields always contain '='; a bare token here is the value that
        // trails a --flag (e.g. --timeout 5000), not a field.
        if let Some((k, v)) = arg.split_once('=') {
            fields.push((k, v));
        }
    }
    let mut client = QueryClient::connect(
        addr.as_str(),
        std::time::Duration::from_millis(timeout.max(1)),
    )
    .map_err(|e| format!("connecting {addr}: {e}"))?;
    let reply = client.request(verb, &fields).map_err(|e| e.to_string())?;
    eprintln!("epoch={}", reply.epoch);
    for line in &reply.lines {
        println!("{line}");
    }
    client.bye();
    Ok(())
}

/// The hidden `shard-worker` subcommand — the child half of the subprocess
/// executor. Parses the argv request, mines the shipped shard slab, writes
/// the archive slab, and prints the stats record on stdout. Exit codes are
/// part of the worker protocol: 0 success, 2 slab I/O failure, 3 malformed
/// request or dataset failure.
fn cmd_shard_worker(args: &[String]) -> ExitCode {
    let req = match WorkerRequest::parse(args) {
        Ok(req) => req,
        Err(e) => {
            eprintln!("shard-worker: {e}");
            return ExitCode::from(3);
        }
    };
    match run_shard_worker(&req) {
        Ok(stats) => {
            print!("{}", stats.to_record(req.shard));
            ExitCode::SUCCESS
        }
        Err(e @ WorkerError::Slab(_)) => {
            eprintln!("shard-worker: {e}");
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("shard-worker: {e}");
            ExitCode::from(3)
        }
    }
}

/// The `shard-host` subcommand — the worker half of the remote executor
/// (worker interchange protocol v2). Binds, announces the bound address on
/// stdout (an OS-assigned `:0` port is the fixture-friendly default), and
/// serves one shard request per connection until `--max-conns` runs out.
fn cmd_shard_host(args: &[String]) -> Result<(), String> {
    let bind = parse_value::<String>(args, "--bind")?.unwrap_or_else(|| "127.0.0.1:0".into());
    let listener =
        std::net::TcpListener::bind(&bind).map_err(|e| format!("binding {bind}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let mut opts = HostOptions::default()
        .with_verbose(parse_flag(args, "--verbose"))
        .with_fault(net::FaultPlan::from_env());
    if let Some(n) = parse_value::<usize>(args, "--max-conns")? {
        opts = opts.with_max_conns(n);
    }
    if let Some(ms) = parse_value::<u64>(args, "--heartbeat")? {
        opts = opts.with_heartbeat(std::time::Duration::from_millis(ms.max(1)));
    }
    match parse_value::<u64>(args, "--io-timeout")? {
        Some(ms) => opts = opts.with_io_timeout(std::time::Duration::from_millis(ms.max(1))),
        None => {
            if let Some(t) = net::timeout_from_env() {
                opts = opts.with_io_timeout(t);
            }
        }
    }
    // Announce on stdout (flushed) so scripts can scrape the port even
    // when it was OS-assigned.
    println!("cfp shard-host listening on {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    net::serve(listener, &opts).map_err(|e| format!("serve: {e}"))
}
