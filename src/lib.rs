//! # colossal — Mining Colossal Frequent Patterns by Core Pattern Fusion
//!
//! Facade crate for the Pattern-Fusion reproduction (Zhu, Yan, Han, Yu,
//! Cheng — ICDE 2007). It re-exports the workspace crates under stable paths
//! and hosts the runnable examples and cross-crate integration tests.
//!
//! ```
//! use colossal::prelude::*;
//!
//! // The paper's introductory pathological table: Diag40 plus 20 identical
//! // rows hiding a single colossal pattern among C(40,20) mid-sized ones.
//! let db = colossal::datagen::diag_plus(8, 4, 6);
//! let pool = colossal::miners::initial_pool(&db, 4, 2);
//! assert!(!pool.is_empty());
//! ```

#![forbid(unsafe_code)]

/// Itemset and transaction-database engine.
pub use cfp_itemset as itemset;

/// Synthetic dataset generators for every experiment.
pub use cfp_datagen as datagen;

/// Baseline miners (Apriori, Eclat, FP-growth, closed, maximal, top-k).
pub use cfp_miners as miners;

/// Pattern-Fusion — the paper's contribution.
pub use cfp_core as fusion;

/// The quality-evaluation model (pattern-set approximation error).
pub use cfp_quality as quality;

/// The most common imports in one place.
pub mod prelude {
    pub use cfp_itemset::{DbBuilder, Itemset, MinSupport, TidSet, TransactionDb, VerticalIndex};
    pub use cfp_miners::{Budget, MinedPattern};
}
