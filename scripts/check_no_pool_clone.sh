#!/usr/bin/env bash
# Slab-data-plane grep gate: the mine → fuse hot path must stay on the
# columnar PatternPool slab — no layer may reintroduce the legacy
# Vec<Pattern> copying idioms (per-pattern tid-set clones into index
# arenas, cloned shard sub-pools, pattern clones into the archive).
#
# Non-test source only (everything above `#[cfg(test)]`), line comments
# stripped. Run from the workspace root; CI runs it in the build-test job.
set -eu

fail=0

# Non-test, non-comment source of a file.
strip() {
    awk '/#\[cfg\(test\)\]/{exit} {print}' "$1" | sed 's://.*$::'
}

check_absent() { # file, pattern, message
    local file="$1" pattern="$2" message="$3"
    if strip "$file" | grep -En "$pattern" >/dev/null; then
        echo "FAIL $file: $message"
        echo "  offending lines:"
        strip "$file" | grep -En "$pattern" | sed 's/^/    /'
        fail=1
    else
        echo "ok   $file: $message"
    fi
}

# 1. The ball index borrows slab rows: it must never touch an owned
#    tid-set (no `.tids`, no `blocks()` copying into private arenas).
check_absent crates/core/src/ball.rs \
    '\.tids|blocks\(\)|AlignedWords' \
    'no owned tid-sets / word arenas (index borrows slab rows)'

# 2. The shard runner partitions by row-id lists over one shared slab: no
#    cloned Vec<Pattern> sub-pools, no per-pattern tid clones.
check_absent crates/core/src/shard.rs \
    'sub(_pool)?\s*:\s*Vec<Pattern>|\.tids\.clone|patterns\.clone\(\)' \
    'no cloned sub-pools (shards are row-id lists)'

# 3. The iteration loop interns rows: the archive must be row ids, never
#    cloned patterns.
check_absent crates/core/src/algorithm.rs \
    'archive\s*:\s*Vec<Pattern>|iter\(\)\.cloned\(\)' \
    'archive holds row ids, not cloned patterns'

# 4. The initial-pool miner emits straight into the slab: the engine's
#    mine path must not materialize PoolPattern vectors.
check_absent crates/core/src/algorithm.rs \
    'cfp_miners::initial_pool(_stratified)?\(' \
    'engine mines through initial_pool_slab, not the Vec materialization'

# 5. The out-of-core spill streams shard rows from the base slab borrows
#    (`dump_slab_rows_path`): no whole-slab permuted copy, no cloned slab
#    or sub-pool materialization on the spill/load path.
check_absent crates/core/src/oocore.rs \
    '\.permuted\(|pool\.clone\(\)|slab\.clone\(\)|base\.clone\(\)|base_pool\(\)\.clone' \
    'spill streams rows from the shared base slab (no whole-slab copies)'

# 6. The slab writer serializes from column borrows; it must never
#    assemble an intermediate PatternPool or clone columns to write them.
check_absent crates/itemset/src/slab_io.rs \
    'permuted\(|\.to_vec\(\)|clone\(\)' \
    'slab writer streams column borrows (no intermediate pool or column copies)'

# 7. The subprocess executor ships each shard by streaming base-slab row
#    borrows into a CFPSLAB file (`dump_slab_rows_path`) and reads archives
#    back as slab rows: no cloned sub-pools or whole-slab copies may appear
#    on the worker send/receive path (config/path clones are fine).
check_absent crates/core/src/executor.rs \
    'pool\.clone\(\)|slab\.clone\(\)|base\.clone\(\)|\.permuted\(|Vec<Pattern>|\.tids\.clone' \
    'worker interchange streams slab rows (no cloned sub-pools or slab copies)'

# 8. The networked executor frames each shard's sub-pool over TCP straight
#    from base-slab row borrows (`write_slab_rows` into the chunking
#    FrameSink) and decodes archives from the framed byte stream: no
#    cloned sub-pools or whole-slab copies on the wire path either.
check_absent crates/core/src/net.rs \
    'pool\.clone\(\)|slab\.clone\(\)|base\.clone\(\)|\.permuted\(|Vec<Pattern>|\.tids\.clone' \
    'wire interchange streams slab rows (no cloned sub-pools or slab copies)'

# 9. The query service renders every reply straight from generation slab
#    borrows (`items_of` / `words_of` / `support`): no per-request slab,
#    pattern, or tid-set copies on the read path (session overlays fork
#    the Arc-shared frozen base; only `put` owns its interned patterns).
check_absent crates/core/src/serve.rs \
    'pool\.clone\(\)|slab\.clone\(\)|base\.clone\(\)|\.permuted\(|\.tids\.clone|materialize\(' \
    'service read path renders from slab borrows (no per-request copies)'

# 10. The incremental delta driver carries each generation by splicing
#     clean subtree spans out of the previous plain slab and sharing the
#     result (`PoolStore::from_shared`): no whole-slab or sub-pool copies
#     may appear on the append path (the BallIndex snapshot for the next
#     generation's carry and the cached FusionResult are views/results,
#     not pool copies, and are allowed).
check_absent crates/core/src/delta.rs \
    'plain\.clone\(\)|pool\.clone\(\)|slab\.clone\(\)|base\.clone\(\)|\.permuted\(|\.tids\.clone|materialize\(' \
    'delta append splices spans and shares the slab (no whole-pool copies)'

if [ "$fail" -ne 0 ]; then
    echo "slab hot-path gate failed: a Vec<Pattern> copying idiom is back on the mine->fuse path"
    exit 1
fi
echo "slab hot-path gate passed"
