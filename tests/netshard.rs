//! Contracts of the remote shard executor
//! (`cfp_core::executor::ExecutorKind::Remote`), driven against real
//! localhost TCP hosts (`cfp_core::net::spawn_host` — the same serve loop
//! `cfp shard-host` runs):
//!
//! 1. **bit-identity** — the remote executor returns bit-for-bit the
//!    in-thread sharded engine's output for both partition strategies at
//!    1–4 shards and 1/2/8 coordinator threads, itemsets AND support sets
//!    plus the per-shard counters shipped back in the stats frame;
//! 2. **the fault matrix converges** — every injected fault (connection
//!    drop, mid-frame truncation, corrupt CRC, stalled mine, worker kill)
//!    ends in either a successful deterministic retry or a clean
//!    in-thread fallback, with output identical to the fault-free run —
//!    no hangs, no panics, no partial merges;
//! 3. **failures are typed** — retry exhaustion without fallback is
//!    [`ExecutorError::Net`] naming the shard, the attempt count, and the
//!    last per-phase failure; configuration edges (no workers,
//!    `closure_step`) are rejected up front;
//! 4. **no orphaned spill files** — the coordinator's work directory is
//!    gone after success, fallback, and error paths alike;
//! 5. **proptest** — random fault schedules never change the answer.

use colossal::fusion::net::{self, FaultPlan, HostOptions, NetError, NetPhase, RemoteConfig};
use colossal::fusion::{
    EngineError, ExecutorError, ExecutorKind, FusionConfig, FusionResult, Pattern, PatternFusion,
    RunStats, ShardStats, ShardStrategy, Source,
};
use proptest::prelude::*;
use std::net::SocketAddr;
use std::time::Duration;

/// Spawns an in-process host fleet with a test-friendly heartbeat.
fn fleet(n: usize, fault: &FaultPlan) -> Vec<String> {
    (0..n)
        .map(|_| {
            let opts = HostOptions::default()
                .with_heartbeat(Duration::from_millis(50))
                .with_fault(fault.clone());
            let (addr, _handle): (SocketAddr, _) = net::spawn_host(opts).expect("spawn host");
            addr.to_string()
        })
        .collect()
}

/// A remote executor over `workers` with snappy test pacing.
fn remote(workers: Vec<String>) -> RemoteConfig {
    RemoteConfig::default()
        .with_workers(workers)
        .with_timeout(Duration::from_millis(2_000))
        .with_backoff_base(Duration::from_millis(2))
}

/// The remote backend through the unified engine entry, with the engine's
/// wrapper peeled back off so the typed-error contracts below keep
/// matching on [`ExecutorError`] directly.
fn run_remote(
    db: &colossal::itemset::TransactionDb,
    cfg: FusionConfig,
    rc: RemoteConfig,
) -> Result<FusionResult, ExecutorError> {
    cfg.engine(db)
        .with_executor(ExecutorKind::Remote(rc))
        .mine(Source::Transactions)
        .map_err(|e| match e {
            EngineError::Executor(inner) => inner,
            other => panic!("the transactions source cannot fail to load: {other}"),
        })
}

/// Full bit-identity of two results: itemsets AND support sets, in order.
fn assert_identical(a: &[Pattern], b: &[Pattern], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: result sizes differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.items, y.items, "{label}: itemset drift");
        assert_eq!(x.tids, y.tids, "{label}: support-set drift");
    }
}

/// Per-shard counters with wall-clock times (which legitimately vary)
/// zeroed out.
fn shards_without_time(stats: &RunStats) -> Vec<ShardStats> {
    stats
        .shards
        .iter()
        .map(|s| {
            let mut s = s.clone();
            s.elapsed = std::time::Duration::default();
            s
        })
        .collect()
}

fn planted_db() -> colossal::datagen::PlantedData {
    colossal::datagen::planted(&colossal::datagen::PlantedConfig {
        n_rows: 40,
        pattern_sizes: vec![9, 7, 6],
        pattern_support: 12,
        max_row_overlap: 4,
        row_len: 0,
        filler_rows_lo: 2,
        filler_rows_hi: 3,
        seed: 5,
    })
}

fn config(shards: usize, strategy: ShardStrategy, threads: usize) -> FusionConfig {
    FusionConfig::new(12, 12)
        .with_pool_max_len(2)
        .with_seed(99)
        .with_shards(shards)
        .with_shard_strategy(strategy)
        .with_threads(threads)
}

#[test]
fn remote_is_bit_identical_to_in_thread_including_counters() {
    let data = planted_db();
    let workers = fleet(2, &FaultPlan::default());
    for strategy in ShardStrategy::ALL {
        for shards in [1usize, 2, 4] {
            let inm = PatternFusion::new(&data.db, config(shards, strategy, 1)).run();
            for threads in [1usize, 2, 8] {
                let rem = run_remote(
                    &data.db,
                    config(shards, strategy, threads),
                    remote(workers.clone()),
                )
                .expect("remote run");
                let label = format!("{strategy:?} shards={shards} threads={threads}");
                assert_identical(&inm.patterns, &rem.patterns, &label);
                assert_eq!(inm.stats.converged, rem.stats.converged, "{label}");
                if shards > 1 {
                    assert_eq!(
                        shards_without_time(&inm.stats),
                        shards_without_time(&rem.stats),
                        "{label}: per-shard counters drifted"
                    );
                }
                assert_eq!(
                    rem.stats.net.fallbacks, 0,
                    "{label}: fault-free run fell back"
                );
                assert_eq!(rem.stats.net.retries, 0, "{label}: fault-free run retried");
            }
        }
    }
}

#[test]
fn every_host_side_fault_is_recovered_by_a_deterministic_retry() {
    let data = planted_db();
    let inm = PatternFusion::new(&data.db, config(2, ShardStrategy::SupportStratum, 1)).run();
    // Each fault fires on attempt 0 of every shard; the retry (attempt 1)
    // must land clean. Fallback is OFF so success proves the retry alone.
    for fault in [
        "stall-mine",
        "corrupt-frame",
        "truncate-frame",
        "kill-worker",
    ] {
        let plan = FaultPlan::parse(&format!("{fault}:attempt0")).expect("plan");
        let workers = fleet(1, &plan);
        let rc = remote(workers)
            .with_timeout(Duration::from_millis(800))
            .with_fallback_in_thread(false);
        let rem = run_remote(&data.db, config(2, ShardStrategy::SupportStratum, 2), rc)
            .unwrap_or_else(|e| panic!("{fault}: retry did not recover: {e}"));
        assert_identical(&inm.patterns, &rem.patterns, fault);
        assert_eq!(
            shards_without_time(&inm.stats),
            shards_without_time(&rem.stats),
            "{fault}: per-shard counters drifted"
        );
        assert!(rem.stats.net.retries >= 1, "{fault}: retry never fired");
        assert_eq!(rem.stats.net.fallbacks, 0, "{fault}");
    }
}

#[test]
fn a_dropped_connection_is_recovered_by_a_deterministic_retry() {
    let data = planted_db();
    let inm = PatternFusion::new(&data.db, config(2, ShardStrategy::SupportStratum, 1)).run();
    // Coordinator-side drop before dialing, attempt 0 only.
    let workers = fleet(1, &FaultPlan::default());
    let rc = remote(workers)
        .with_fault(FaultPlan::parse("drop-conn:attempt0").expect("plan"))
        .with_fallback_in_thread(false);
    let rem = run_remote(&data.db, config(2, ShardStrategy::SupportStratum, 2), rc)
        .expect("retry after drop-conn");
    assert_identical(&inm.patterns, &rem.patterns, "drop-conn");
    assert!(rem.stats.net.retries >= 1);
    assert_eq!(rem.stats.net.fallbacks, 0);
}

#[test]
fn retry_exhaustion_falls_back_in_thread_bit_identically() {
    let data = planted_db();
    let inm = PatternFusion::new(&data.db, config(3, ShardStrategy::MinhashBucket, 1)).run();
    // Every attempt of every shard is dropped: the whole fleet is dead
    // from the coordinator's point of view. Fallback (the default) must
    // converge to the single-machine answer.
    let workers = fleet(1, &FaultPlan::default());
    let rc = remote(workers)
        .with_fault(FaultPlan::parse("drop-conn").expect("plan"))
        .with_attempts(2);
    let rem =
        run_remote(&data.db, config(3, ShardStrategy::MinhashBucket, 2), rc).expect("fallback run");
    assert_identical(&inm.patterns, &rem.patterns, "fallback");
    assert_eq!(
        shards_without_time(&inm.stats),
        shards_without_time(&rem.stats),
        "fallback: per-shard counters drifted"
    );
    let net = &rem.stats.net;
    assert_eq!(
        net.fallbacks, net.shards_dispatched,
        "every shard fell back"
    );
    assert_eq!(
        net.attempts,
        net.shards_dispatched * 2,
        "both attempts burned"
    );
    assert!(
        net.backoff_total > Duration::ZERO,
        "retries paused deterministically"
    );
}

#[test]
fn retry_exhaustion_without_fallback_is_a_typed_net_error() {
    let data = planted_db();
    let workers = fleet(1, &FaultPlan::default());
    let rc = remote(workers)
        .with_fault(FaultPlan::parse("drop-conn").expect("plan"))
        .with_attempts(3)
        .with_fallback_in_thread(false);
    match run_remote(&data.db, config(2, ShardStrategy::SupportStratum, 1), rc) {
        Err(ExecutorError::Net(nf)) => {
            assert_eq!(nf.shard, 0, "failures surface in shard order");
            assert_eq!(nf.attempts, 3, "{nf}");
            assert!(matches!(nf.last, NetError::Connect(_)), "{nf}");
        }
        other => panic!("expected a typed net failure, got {other:?}"),
    }
}

#[test]
fn a_stalled_mine_times_out_typed_not_hangs() {
    let data = planted_db();
    // The host accepts the shard, then sleeps without heartbeating; the
    // mine-phase deadline must fire (bounded wait), typed as a timeout.
    let plan = FaultPlan::parse("stall-mine").expect("plan");
    let workers = fleet(1, &plan);
    let rc = remote(workers)
        .with_timeout(Duration::from_millis(300))
        .with_attempts(1)
        .with_fallback_in_thread(false);
    let t0 = std::time::Instant::now();
    match run_remote(&data.db, config(1, ShardStrategy::SupportStratum, 1), rc) {
        Err(ExecutorError::Net(nf)) => {
            assert!(
                matches!(
                    nf.last,
                    NetError::Timeout {
                        phase: NetPhase::Mine
                    }
                ),
                "{nf}"
            );
        }
        other => panic!("expected a mine-phase timeout, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "the deadline bounded the wait"
    );
}

#[test]
fn connection_refused_is_typed_and_counted() {
    let data = planted_db();
    // Port 1 on localhost: nothing listens there (binding it needs root).
    let rc = remote(vec!["127.0.0.1:1".into()])
        .with_attempts(2)
        .with_fallback_in_thread(false);
    match run_remote(&data.db, config(2, ShardStrategy::SupportStratum, 1), rc) {
        Err(ExecutorError::Net(nf)) => {
            assert_eq!(nf.attempts, 2, "{nf}");
            assert!(matches!(nf.last, NetError::Connect(_)), "{nf}");
        }
        other => panic!("expected a typed connect failure, got {other:?}"),
    }
}

#[test]
fn no_workers_and_closure_step_are_rejected_up_front() {
    let data = planted_db();
    match run_remote(
        &data.db,
        config(2, ShardStrategy::SupportStratum, 1),
        RemoteConfig::default(),
    ) {
        Err(ExecutorError::Unsupported(why)) => assert!(why.contains("--workers"), "{why}"),
        other => panic!("expected Unsupported, got {other:?}"),
    }
    let cfg = config(2, ShardStrategy::SupportStratum, 1).with_closure_step(true);
    let rc = remote(vec!["127.0.0.1:1".into()]);
    match run_remote(&data.db, cfg, rc) {
        Err(ExecutorError::Unsupported(why)) => assert!(why.contains("closure_step"), "{why}"),
        other => panic!("expected Unsupported, got {other:?}"),
    }
}

#[test]
fn empty_pool_dials_nothing_and_returns_empty() {
    let db = colossal::datagen::diag(4);
    let cfg = FusionConfig::new(4, 2).with_shards(2);
    // A worker address that would instantly refuse proves no connection
    // is ever attempted for an empty pool.
    let rc = remote(vec!["127.0.0.1:1".into()]);
    let r = cfg
        .engine(&db)
        .with_executor(ExecutorKind::Remote(rc))
        .mine(Source::Slab(colossal::fusion::PatternPool::new(4)))
        .expect("empty pool run");
    assert!(r.patterns.is_empty());
    assert!(r.stats.shards.is_empty());
    assert!(!r.stats.net.active());
}

/// No orphaned CFPSLAB files on any exit path: success-via-fallback and
/// typed-error alike must leave the spill directory deleted.
#[test]
fn spill_dir_is_cleaned_on_fallback_and_error_paths() {
    let data = planted_db();
    let spill = |tag: &str| {
        std::env::temp_dir().join(format!("cfp-netshard-audit-{tag}-{}", std::process::id()))
    };

    // Fallback path: every attempt killed host-side, fallback on.
    let dir = spill("fallback");
    std::fs::create_dir_all(&dir).unwrap();
    let workers = fleet(1, &FaultPlan::parse("kill-worker").expect("plan"));
    let rc = remote(workers).with_attempts(2).with_work_dir(&dir);
    let rem = run_remote(&data.db, config(2, ShardStrategy::SupportStratum, 2), rc)
        .expect("fallback run");
    assert!(rem.stats.net.fallbacks > 0);
    assert!(!dir.exists(), "fallback path left spill files behind");

    // Error path: same fleet, fallback off — the run fails typed and the
    // guard still sweeps the directory.
    let dir = spill("error");
    std::fs::create_dir_all(&dir).unwrap();
    let workers = fleet(1, &FaultPlan::parse("kill-worker").expect("plan"));
    let rc = remote(workers)
        .with_attempts(2)
        .with_work_dir(&dir)
        .with_fallback_in_thread(false);
    assert!(matches!(
        run_remote(&data.db, config(2, ShardStrategy::SupportStratum, 2), rc),
        Err(ExecutorError::Net(_))
    ));
    assert!(!dir.exists(), "error path left spill files behind");

    // Mid-fleet connect failure: shard 0 dials a dead port while shard 1
    // is still in flight to a live host.
    let dir = spill("midfleet");
    std::fs::create_dir_all(&dir).unwrap();
    let mut workers = vec!["127.0.0.1:1".to_string()];
    workers.extend(fleet(1, &FaultPlan::default()));
    let rc = remote(workers)
        .with_attempts(1)
        .with_work_dir(&dir)
        .with_fallback_in_thread(false);
    assert!(matches!(
        run_remote(&data.db, config(2, ShardStrategy::SupportStratum, 2), rc),
        Err(ExecutorError::Net(_))
    ));
    assert!(!dir.exists(), "mid-fleet failure left spill files behind");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whatever deterministic fault schedule hits the fleet, the answer
    /// never diverges from the fault-free in-thread run: each shard either
    /// retries through or falls back, both bit-identical.
    #[test]
    fn random_fault_schedules_never_change_the_answer(
        rules in proptest::collection::vec((0usize..5, 0usize..3, 0usize..2), 0..4),
    ) {
        const ACTIONS: [&str; 5] =
            ["drop-conn", "stall-mine", "corrupt-frame", "truncate-frame", "kill-worker"];
        let spec: Vec<String> = rules
            .iter()
            .map(|&(a, s, at)| format!("{}:shard{s}:attempt{at}", ACTIONS[a]))
            .collect();
        let plan = FaultPlan::parse(&spec.join(",")).expect("generated plan");

        let data = planted_db();
        let inm = PatternFusion::new(&data.db, config(3, ShardStrategy::SupportStratum, 1)).run();
        // The same plan arms both sides: the coordinator honors drop-conn,
        // the hosts honor the rest. Attempts exceed the targeted range
        // (0..2), so attempt 2 is always clean; fallback stays on anyway.
        let workers = fleet(2, &plan);
        let rc = remote(workers)
            .with_fault(plan)
            .with_timeout(Duration::from_millis(400))
            .with_attempts(3);
        let rem = run_remote(&data.db, config(3, ShardStrategy::SupportStratum, 2), rc)
            .expect("faulted run converges");
        assert_identical(&inm.patterns, &rem.patterns, &spec.join(","));
        prop_assert_eq!(
            shards_without_time(&inm.stats),
            shards_without_time(&rem.stats),
            "{}: per-shard counters drifted",
            spec.join(",")
        );
    }
}
