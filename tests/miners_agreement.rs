//! Cross-miner agreement on generated workloads: the three complete miners
//! must return identical pattern sets, and the closed/maximal/top-k miners
//! must be consistent projections of them.

use colossal::miners::{
    apriori, closed, eclat, fp_growth, maximal, sort_canonical, top_k_closed, Budget, MinedPattern,
};
use colossal::prelude::*;

fn quest_db() -> TransactionDb {
    colossal::datagen::quest(&colossal::datagen::QuestConfig {
        n_transactions: 250,
        n_items: 32,
        avg_transaction_len: 8,
        ..Default::default()
    })
}

fn mine_all(db: &TransactionDb, min: usize) -> Vec<Vec<MinedPattern>> {
    let unlimited = Budget::unlimited();
    let mut sets = vec![
        apriori(db, min, &unlimited).patterns,
        eclat(db, min, &unlimited).patterns,
        fp_growth(db, min, &unlimited).patterns,
    ];
    for s in &mut sets {
        sort_canonical(s);
    }
    sets
}

#[test]
fn complete_miners_agree_on_quest_workload() {
    let db = quest_db();
    for min in [4, 8, 16] {
        let sets = mine_all(&db, min);
        assert!(!sets[0].is_empty(), "workload empty at {min}");
        assert_eq!(sets[0], sets[1], "apriori vs eclat at {min}");
        assert_eq!(sets[1], sets[2], "eclat vs fp-growth at {min}");
    }
}

#[test]
fn closed_set_is_the_support_closed_projection() {
    let db = quest_db();
    let min = 6;
    let complete = eclat(&db, min, &Budget::unlimited()).patterns;
    let closed_set = closed(&db, min, &Budget::unlimited()).patterns;

    // Every closed pattern is frequent with matching support.
    let complete_map: std::collections::HashMap<_, _> = complete
        .iter()
        .map(|p| (p.items.clone(), p.support))
        .collect();
    for c in &closed_set {
        assert_eq!(complete_map.get(&c.items), Some(&c.support), "{c:?}");
    }
    // Every frequent pattern's support is matched by some closed superset.
    let closed_list: Vec<_> = closed_set.iter().collect();
    for p in &complete {
        assert!(
            closed_list
                .iter()
                .any(|c| c.support == p.support && p.items.is_subset_of(&c.items)),
            "no closed superset for {p:?}"
        );
    }
}

#[test]
fn maximal_set_is_the_frontier_of_the_complete_set() {
    let db = quest_db();
    let min = 6;
    let complete = eclat(&db, min, &Budget::unlimited()).patterns;
    let maximal_set = maximal(&db, min, &Budget::unlimited()).patterns;

    // Maximal patterns are frequent and pairwise incomparable.
    for (i, m) in maximal_set.iter().enumerate() {
        assert!(complete.iter().any(|p| p.items == m.items));
        for other in &maximal_set[..i] {
            assert!(!m.items.is_proper_subset_of(&other.items));
            assert!(!other.items.is_proper_subset_of(&m.items));
        }
    }
    // Every frequent pattern lies under some maximal one.
    for p in &complete {
        assert!(
            maximal_set.iter().any(|m| p.items.is_subset_of(&m.items)),
            "{p:?} not covered"
        );
    }
}

#[test]
fn topk_is_the_head_of_the_closed_ranking() {
    let db = quest_db();
    let mut by_support = closed(&db, 1, &Budget::unlimited()).patterns;
    by_support.sort_by(|a, b| b.support.cmp(&a.support).then(a.items.cmp(&b.items)));

    for (k, min_len) in [(5usize, 1usize), (10, 2), (25, 3)] {
        let got = top_k_closed(&db, k, min_len, 1, &Budget::unlimited()).patterns;
        let want: Vec<_> = by_support
            .iter()
            .filter(|p| p.items.len() >= min_len)
            .take(k)
            .collect();
        assert_eq!(got.len(), want.len(), "k={k} len={min_len}");
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.support, w.support, "k={k} len={min_len}");
        }
    }
}

#[test]
fn budgets_cap_all_miners_consistently() {
    // On Diag18 at support 9 (C(18,9) = 48 620 maximal patterns), every
    // budgeted miner must terminate early yet return valid partial results.
    let db = colossal::datagen::diag(18);
    let budget = Budget::unlimited().with_max_nodes(1_000);
    let index = VerticalIndex::new(&db);
    let outcomes = [
        apriori(&db, 9, &budget),
        eclat(&db, 9, &budget),
        fp_growth(&db, 9, &budget),
        closed(&db, 9, &budget),
        maximal(&db, 9, &budget),
    ];
    for (i, out) in outcomes.iter().enumerate() {
        assert!(!out.complete, "miner {i} should be capped");
        for p in out.patterns.iter().take(50) {
            assert_eq!(
                index.support(&p.items),
                p.support,
                "miner {i} support drift"
            );
        }
    }
}
