//! Degenerate inputs and failure injection: every public entry point must
//! behave sensibly on empty, single-row, single-item, and duplicate-heavy
//! databases, and budgets must cap instantly when zeroed.

use colossal::fusion::{FusionConfig, PatternFusion};
use colossal::itemset::{parse_fimi, Itemset, TransactionDb, VerticalIndex};
use colossal::miners::{
    apriori, closed, eclat, fp_growth, initial_pool, maximal, top_k_closed, Budget,
};

fn all_miners(db: &TransactionDb, min: usize, budget: &Budget) -> Vec<(usize, bool)> {
    vec![
        {
            let o = apriori(db, min, budget);
            (o.patterns.len(), o.complete)
        },
        {
            let o = eclat(db, min, budget);
            (o.patterns.len(), o.complete)
        },
        {
            let o = fp_growth(db, min, budget);
            (o.patterns.len(), o.complete)
        },
        {
            let o = closed(db, min, budget);
            (o.patterns.len(), o.complete)
        },
        {
            let o = maximal(db, min, budget);
            (o.patterns.len(), o.complete)
        },
        {
            let o = top_k_closed(db, 10, 1, min, budget);
            (o.patterns.len(), o.complete)
        },
    ]
}

#[test]
fn empty_database_everywhere() {
    let db = TransactionDb::from_dense(vec![]);
    for (n, complete) in all_miners(&db, 1, &Budget::unlimited()) {
        assert_eq!(n, 0);
        assert!(complete);
    }
    let result = PatternFusion::new(&db, FusionConfig::new(5, 1)).run();
    assert!(result.patterns.is_empty());
    assert!(initial_pool(&db, 1, 3).is_empty());
}

#[test]
fn single_transaction_database() {
    let db = parse_fimi("3 1 4 1 5").unwrap(); // duplicates collapse → {3,1,4,5}
    assert_eq!(db.transaction(0).len(), 4);
    for (n, complete) in all_miners(&db, 1, &Budget::unlimited()) {
        assert!(complete);
        assert!(n >= 1, "got {n}");
    }
    // The complete set is all 15 non-empty subsets; closed/maximal collapse
    // to the single transaction.
    let complete = eclat(&db, 1, &Budget::unlimited()).patterns;
    assert_eq!(complete.len(), 15);
    let maximal_set = maximal(&db, 1, &Budget::unlimited()).patterns;
    assert_eq!(maximal_set.len(), 1);
    assert_eq!(maximal_set[0].items.len(), 4);

    let result = PatternFusion::new(&db, FusionConfig::new(3, 1).with_seed(1)).run();
    assert!(!result.patterns.is_empty());
    assert_eq!(result.max_pattern_len(), 4, "fusion reaches the whole txn");
}

#[test]
fn single_item_universe() {
    let db = parse_fimi("7\n7\n7\n").unwrap();
    let complete = eclat(&db, 2, &Budget::unlimited()).patterns;
    assert_eq!(complete.len(), 1);
    assert_eq!(complete[0].support, 3);
    let result = PatternFusion::new(&db, FusionConfig::new(2, 2)).run();
    assert_eq!(result.patterns.len(), 1);
    assert_eq!(result.patterns[0].len(), 1);
}

#[test]
fn all_identical_transactions() {
    let row: Vec<u32> = (0..12).collect();
    let db = TransactionDb::from_dense(vec![Itemset::from_items(&row); 9]);
    // One closed pattern: the full row at support 9.
    let closed_set = closed(&db, 5, &Budget::unlimited()).patterns;
    assert_eq!(closed_set.len(), 1);
    assert_eq!(closed_set[0].items.len(), 12);
    // Fusion assembles the full row.
    let result = PatternFusion::new(&db, FusionConfig::new(4, 5).with_seed(3)).run();
    assert_eq!(result.max_pattern_len(), 12);
    let index = VerticalIndex::new(&db);
    for p in &result.patterns {
        assert_eq!(p.tids, index.tidset(&p.items));
    }
}

#[test]
fn zero_node_budget_caps_instantly_but_validly() {
    let db = colossal::datagen::diag(12);
    let budget = Budget::unlimited().with_max_nodes(0);
    // Exclude top-k here: with min_len 1 its dynamic threshold finishes the
    // search in fewer nodes than one amortized budget check — legitimately
    // complete. It is covered just below with a deep configuration.
    for (i, (_, complete)) in all_miners(&db, 6, &budget).iter().take(5).enumerate() {
        assert!(!complete, "miner {i} must report capped");
    }
    // Force top-k through a deep search: length ≥ 6 patterns on Diag12 at
    // support 6 sit at the bottom of the closed tree.
    let out = top_k_closed(&db, 10, 6, 6, &budget);
    assert!(!out.complete, "deep top-k must be capped");
}

#[test]
fn zero_pattern_budget_caps_after_first_batch() {
    let db = colossal::datagen::diag(12);
    let budget = Budget::unlimited().with_max_patterns(0);
    let out = eclat(&db, 6, &budget);
    assert!(!out.complete);
    // Amortized checking may emit a few patterns before the cap trips.
    assert!(out.patterns.len() < 1000);
}

#[test]
fn min_support_above_database_size() {
    let db = colossal::datagen::diag(10);
    for (n, complete) in all_miners(&db, 11, &Budget::unlimited()) {
        assert_eq!(n, 0, "nothing can reach support 11 in 10 rows");
        assert!(complete);
    }
}

#[test]
fn fusion_handles_disconnected_pattern_space() {
    // Two groups with zero-overlap support sets: balls never mix them, and
    // fusion returns patterns from both sides.
    let mut txns = Vec::new();
    for _ in 0..10 {
        txns.push(Itemset::from_items(&[0, 1, 2]));
    }
    for _ in 0..10 {
        txns.push(Itemset::from_items(&[10, 11, 12]));
    }
    let db = TransactionDb::from_dense(txns);
    let result = PatternFusion::new(&db, FusionConfig::new(6, 10).with_seed(5)).run();
    let sides: (Vec<_>, Vec<_>) = result
        .patterns
        .iter()
        .partition(|p| p.items.items()[0] < 10);
    assert!(!sides.0.is_empty(), "left component missing");
    assert!(!sides.1.is_empty(), "right component missing");
    for p in &result.patterns {
        let lo = p.items.items()[0] < 10;
        let hi = *p.items.items().last().unwrap() >= 10;
        assert!(!(lo && hi), "mixed infrequent pattern {:?}", p.items);
    }
}
