//! Empirical validation of the paper's probabilistic and structural
//! theorems on real data structures (complementing the per-module unit
//! tests of Lemmas 1–5).

use colossal::fusion::{ball_radius, core_patterns_of, pattern_distance, robustness, Pattern};
use colossal::itemset::{Itemset, TransactionDb, VerticalIndex};
use colossal::miners::{closed, Budget};
use colossal::quality::edit_distance;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Theorem 3: drawing m* = ⌈e·n·ln n / k⌉ k-subsets of an n-item pattern
/// uniformly at random covers all n items with probability ≥ 1 − 1/n².
#[test]
fn theorem3_sample_size_recovers_all_items() {
    let n = 12usize;
    let k = 2usize;
    let m_star = (std::f64::consts::E * n as f64 * (n as f64).ln() / k as f64).ceil() as usize;
    let mut rng = StdRng::seed_from_u64(3);
    let trials = 400;
    let mut successes = 0;
    for _ in 0..trials {
        let mut covered = vec![false; n];
        for _ in 0..m_star {
            for i in rand::seq::index::sample(&mut rng, n, k) {
                covered[i] = true;
            }
        }
        if covered.iter().all(|&c| c) {
            successes += 1;
        }
    }
    // The bound guarantees ≥ 1 − 1/144 ≈ 99.3%; allow sampling slack.
    let rate = successes as f64 / trials as f64;
    assert!(rate >= 0.97, "coverage rate {rate} below Theorem 3's bound");
}

/// Theorem 3's converse sanity check: far fewer draws than m* must fail
/// regularly (otherwise the bound would be vacuous at this scale).
#[test]
fn theorem3_small_samples_miss_items() {
    let n = 12usize;
    let k = 2usize;
    let small = n / k; // just enough slots to cover with zero waste
    let mut rng = StdRng::seed_from_u64(4);
    let trials = 300;
    let mut successes = 0;
    for _ in 0..trials {
        let mut covered = vec![false; n];
        for _ in 0..small {
            for i in rand::seq::index::sample(&mut rng, n, k) {
                covered[i] = true;
            }
        }
        if covered.iter().all(|&c| c) {
            successes += 1;
        }
    }
    assert!(
        successes < trials / 10,
        "covering with n/k draws should be rare, got {successes}/{trials}"
    );
}

/// Theorem 4: if the minimum edit distance between a closed pattern α and
/// every other closed pattern is d, then α is at least (d−1, τ)-robust —
/// for any τ, since the proof only uses support-set equality. (The paper's
/// statement implicitly assumes d ≤ |α|; robustness cannot exceed |α|−1
/// because the remainder must stay non-empty, so we check against
/// `min(d−1, |α|−1)`.)
#[test]
fn theorem4_outliers_are_robust() {
    // Planted isolated blocks: the closed frequent layer is exactly the
    // blocks, pairwise separated by large edit distances.
    let data = colossal::datagen::planted(&colossal::datagen::PlantedConfig {
        n_rows: 40,
        pattern_sizes: vec![8, 5, 4],
        pattern_support: 12,
        max_row_overlap: 5,
        row_len: 24,
        filler_rows_lo: 2,
        filler_rows_hi: 4,
        seed: 17,
    });
    let idx = VerticalIndex::new(&data.db);
    let out = closed(&data.db, 12, &Budget::unlimited());
    assert!(out.complete);
    let patterns: Vec<&Itemset> = out.patterns.iter().map(|p| &p.items).collect();
    assert!(patterns.len() >= 3);

    let mut checked = 0;
    for (i, alpha) in patterns.iter().enumerate() {
        let d = patterns
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, beta)| edit_distance(alpha, beta))
            .min()
            .unwrap();
        if d < 2 {
            continue; // the theorem is vacuous for d ≤ 1
        }
        for tau in [0.5, 0.9, 1.0] {
            let r = robustness(alpha, &idx, tau);
            let bound = (d - 1).min(alpha.len() - 1);
            assert!(
                r >= bound,
                "Theorem 4 violated for {alpha} at τ={tau}: min-edit {d}, robustness {r}"
            );
        }
        checked += 1;
    }
    assert!(checked >= 3, "all blocks should exercise the theorem");

    // And on the paper's own Figure 3 database: abcef's nearest closed
    // neighbour is abe/bcf/acf at edit distance 2, so it must be at least
    // (1, τ)-robust at any τ.
    let mut txns = Vec::new();
    for _ in 0..100 {
        txns.push(Itemset::from_items(&[0, 1, 3]));
        txns.push(Itemset::from_items(&[1, 2, 4]));
        txns.push(Itemset::from_items(&[0, 2, 4]));
        txns.push(Itemset::from_items(&[0, 1, 2, 3, 4]));
    }
    let db = TransactionDb::from_dense(txns);
    let idx = VerticalIndex::new(&db);
    let abcef = Itemset::from_items(&[0, 1, 2, 3, 4]);
    assert!(robustness(&abcef, &idx, 1.0) >= 1);
}

/// Theorem 2 at scale: the core patterns of every planted colossal pattern
/// live inside one r(τ) ball, measured with real support sets.
#[test]
fn theorem2_ball_contains_all_cores_on_planted_data() {
    let data = colossal::datagen::planted(&colossal::datagen::PlantedConfig {
        n_rows: 50,
        pattern_sizes: vec![14],
        pattern_support: 16,
        max_row_overlap: 6,
        row_len: 40,
        filler_rows_lo: 2,
        filler_rows_hi: 5,
        seed: 8,
    });
    let idx = VerticalIndex::new(&data.db);
    let alpha = &data.patterns[0].items;
    let tau = 0.5;
    let r = ball_radius(tau);
    let cores = core_patterns_of(alpha, &idx, tau);
    assert!(cores.len() > 100, "a size-14 plant has many cores");
    // Pairwise distances: sample the first few hundred pairs.
    let pats: Vec<Pattern> = cores
        .iter()
        .take(60)
        .map(|c| Pattern::new(c.clone(), idx.tidset(c)))
        .collect();
    for (i, a) in pats.iter().enumerate() {
        for b in &pats[..i] {
            assert!(
                pattern_distance(a, b) <= r + 1e-12,
                "{:?} vs {:?}",
                a.items,
                b.items
            );
        }
    }
}

/// Observation 1: a random draw from the small-pattern layer lands in a
/// colossal pattern's core-descendant set far more often than in a small
/// pattern's. Measured on the Fig. 3 database over size-2 patterns.
#[test]
fn observation1_random_draws_favor_colossal_descendants() {
    let mut txns = Vec::new();
    for _ in 0..100 {
        txns.push(Itemset::from_items(&[0, 1, 3]));
        txns.push(Itemset::from_items(&[1, 2, 4]));
        txns.push(Itemset::from_items(&[0, 2, 4]));
        txns.push(Itemset::from_items(&[0, 1, 2, 3, 4]));
    }
    let db = TransactionDb::from_dense(txns);
    let idx = VerticalIndex::new(&db);
    let tau = 0.5;

    let abcef = Itemset::from_items(&[0, 1, 2, 3, 4]);
    let bcf = Itemset::from_items(&[1, 2, 4]);
    let cores_big: Vec<Itemset> = core_patterns_of(&abcef, &idx, tau);
    let cores_small: Vec<Itemset> = core_patterns_of(&bcf, &idx, tau);

    // All size-2 itemsets over the 5 items = the paper's drawing pool of 10.
    let mut pool = Vec::new();
    for a in 0..5u32 {
        for b in (a + 1)..5 {
            pool.push(Itemset::from_items(&[a, b]));
        }
    }
    let hits_big = pool.iter().filter(|p| cores_big.contains(p)).count();
    let hits_small = pool.iter().filter(|p| cores_small.contains(p)).count();
    // The paper's figures: probability 0.9 for abcef vs ≤ 0.3 for smaller
    // patterns (their table's semantics). Under strict Definition 3 the
    // exact numbers shift, but the dominance must persist.
    assert!(
        hits_big > hits_small,
        "draws: colossal {hits_big}/10 vs small {hits_small}/10"
    );
    assert!(
        hits_big >= 9,
        "abcef's size-2 core descendants: {hits_big}/10"
    );
}
