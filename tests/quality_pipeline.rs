//! The quality model applied to real mining output (the Figures 7/8
//! pipeline at test scale).

use colossal::fusion::{FusionConfig, PatternFusion};
use colossal::itemset::Itemset;
use colossal::miners::{closed, maximal, Budget};
use colossal::quality::{
    approximation_error, error_by_min_size, uniform_sample, uniform_sampling_error,
};

/// Diag14 at support 7: complete maximal layer = C(14,7) = 3 432 size-7
/// patterns — enumerable, so Δ can be computed against exact ground truth.
fn ground_truth() -> (colossal::prelude::TransactionDb, Vec<Itemset>) {
    let db = colossal::datagen::diag(14);
    let out = maximal(&db, 7, &Budget::unlimited());
    assert!(out.complete);
    let q: Vec<Itemset> = out.patterns.into_iter().map(|p| p.items).collect();
    assert_eq!(q.len(), 3432);
    (db, q)
}

#[test]
fn fusion_error_tracks_uniform_sampling_on_diagonal_data() {
    let (db, q) = ground_truth();
    let k = 40;
    let config = FusionConfig::new(k, 7).with_pool_max_len(2).with_seed(10);
    let result = PatternFusion::new(&db, config).run();
    let p: Vec<Itemset> = result.patterns.iter().map(|x| x.items.clone()).collect();
    let pf_err = approximation_error(&p, &q).unwrap();
    let uni_err = uniform_sampling_error(&q, k, 8, 11).unwrap();
    // The paper's Figure 7 claim: comparable error, so fusion is not stuck
    // locally. Allow a generous band.
    assert!(
        pf_err <= uni_err * 2.0 + 0.1,
        "fusion error {pf_err:.3} far above uniform baseline {uni_err:.3}"
    );
    assert!(
        pf_err > 0.0,
        "a 40-pattern subset cannot cover 3 432 patterns"
    );
}

#[test]
fn error_decreases_with_k() {
    let (db, q) = ground_truth();
    let mut errors = Vec::new();
    for k in [5usize, 20, 80] {
        let config = FusionConfig::new(k, 7).with_pool_max_len(2).with_seed(12);
        let result = PatternFusion::new(&db, config).run();
        let p: Vec<Itemset> = result.patterns.iter().map(|x| x.items.clone()).collect();
        errors.push(approximation_error(&p, &q).unwrap());
    }
    assert!(
        errors[0] > errors[2],
        "error should fall from K=5 to K=80: {errors:?}"
    );
}

#[test]
fn size_sweep_counts_are_consistent_with_closed_ground_truth() {
    let cfg = colossal::datagen::ReplaceConfig::tiny(3);
    let data = colossal::datagen::replace_like(&cfg);
    let ground = closed(&data.db, 18, &Budget::unlimited());
    assert!(ground.complete);
    let q: Vec<Itemset> = ground.patterns.iter().map(|p| p.items.clone()).collect();

    let config = FusionConfig::new(40, 18).with_pool_max_len(3).with_seed(4);
    let result = PatternFusion::new(&data.db, config).run();
    let p: Vec<Itemset> = result.patterns.iter().map(|x| x.items.clone()).collect();

    let sizes: Vec<usize> = (15..=21).collect();
    let sweep = error_by_min_size(&p, &q, &sizes);
    for w in sweep.windows(2) {
        assert!(
            w[0].complete_count >= w[1].complete_count,
            "complete counts must be non-increasing in x"
        );
        assert!(w[0].result_count >= w[1].result_count);
    }
    // At the profile size itself the profiles must be found exactly.
    let at_top = sweep.iter().find(|pt| pt.min_size == 20).unwrap();
    assert_eq!(at_top.complete_count, 2, "two tiny profiles");
    assert_eq!(at_top.result_count, 2);
    assert_eq!(at_top.error, Some(0.0));
}

#[test]
fn uniform_sample_of_mining_results_is_valid_centerset() {
    let (_db, q) = ground_truth();
    let p = uniform_sample(&q, 25, 9);
    let err = approximation_error(&p, &q).unwrap();
    assert!(err > 0.0 && err < 2.0, "sane error range, got {err}");
}

#[test]
fn two_fusion_runs_are_closer_to_each_other_than_to_random_noise() {
    // The §5 comparison mechanism applied to real runs: two independent
    // Pattern-Fusion results on the same planted data should be far more
    // similar to each other than to an unrelated pattern set.
    use colossal::quality::compare_pattern_sets;
    let data = colossal::datagen::planted(&colossal::datagen::PlantedConfig {
        n_rows: 50,
        pattern_sizes: vec![18, 12],
        pattern_support: 14,
        max_row_overlap: 6,
        row_len: 0,
        filler_rows_lo: 2,
        filler_rows_hi: 4,
        seed: 77,
    });
    let run = |seed| {
        let config = FusionConfig::new(10, 14)
            .with_pool_max_len(2)
            .with_seed(seed);
        PatternFusion::new(&data.db, config)
            .run()
            .patterns
            .into_iter()
            .map(|p| p.items)
            .collect::<Vec<Itemset>>()
    };
    let a = run(1);
    let b = run(2);
    let noise: Vec<Itemset> = (100..110u32)
        .map(|i| Itemset::from_items(&[i, i + 1, i + 2]))
        .collect();

    let close = compare_pattern_sets(&a, &b);
    let far = compare_pattern_sets(&a, &noise);
    assert!(
        close.symmetric_delta().unwrap() < far.symmetric_delta().unwrap(),
        "runs should agree more with each other than with noise: {close:?} vs {far:?}"
    );
    assert!(close.hausdorff.unwrap() < far.hausdorff.unwrap());
}
