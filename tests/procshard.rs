//! Contracts of the subprocess shard executor
//! (`cfp_core::executor::ExecutorKind::Subprocess`), driven against the
//! real `cfp` binary (`cfp shard-worker` children):
//!
//! 1. **bit-identity** — the subprocess executor returns bit-for-bit the
//!    in-thread sharded engine's output for both partition strategies at
//!    1–4 shards and 1/2/8 worker threads — itemsets AND support sets,
//!    plus the per-shard counters shipped back over the stats record;
//! 2. **worker death is typed** — a worker that dies (or never spawns)
//!    surfaces as [`colossal::fusion::ExecutorError::Worker`] with the
//!    shard index and exit status, never a hang or a partial merge; with
//!    `fallback_in_process` the dead worker's shard is re-mined in-process
//!    and the run still returns the bit-identical result;
//! 3. **configuration edges** — `closure_step` without a dataset path is
//!    rejected up front, a non-empty user work dir is refused with the
//!    typed spill-dir error, and empty pools never spawn anything.

use colossal::fusion::{
    EngineError, ExecutorError, ExecutorKind, FusionConfig, FusionResult, OocoreError, Pattern,
    PatternFusion, RunStats, ShardStats, ShardStrategy, Source, SubprocessConfig,
};

/// The real worker binary: the `cfp` executable this test suite builds.
fn worker_cmd() -> &'static str {
    env!("CARGO_BIN_EXE_cfp")
}

fn subprocess() -> ExecutorKind {
    ExecutorKind::Subprocess(SubprocessConfig::new().with_worker_cmd(worker_cmd()))
}

/// The subprocess backend through the unified engine entry, with the
/// engine's wrapper peeled back off so the typed-error contracts below
/// keep matching on [`ExecutorError`] directly.
fn run_proc(
    db: &colossal::itemset::TransactionDb,
    cfg: FusionConfig,
    ex: ExecutorKind,
    source: Source,
) -> Result<FusionResult, ExecutorError> {
    cfg.engine(db)
        .with_executor(ex)
        .mine(source)
        .map_err(|e| match e {
            EngineError::Executor(inner) => inner,
            other => panic!("in-memory sources cannot fail to load: {other}"),
        })
}

/// Full bit-identity of two results: itemsets AND support sets, in order.
fn assert_identical(a: &[Pattern], b: &[Pattern], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: result sizes differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.items, y.items, "{label}: itemset drift");
        assert_eq!(x.tids, y.tids, "{label}: support-set drift");
    }
}

/// Per-shard counters with wall-clock times (which legitimately vary)
/// zeroed out.
fn shards_without_time(stats: &RunStats) -> Vec<ShardStats> {
    stats
        .shards
        .iter()
        .map(|s| {
            let mut s = s.clone();
            s.elapsed = std::time::Duration::default();
            s
        })
        .collect()
}

fn planted_db() -> colossal::datagen::PlantedData {
    colossal::datagen::planted(&colossal::datagen::PlantedConfig {
        n_rows: 40,
        pattern_sizes: vec![9, 7, 6],
        pattern_support: 12,
        max_row_overlap: 4,
        row_len: 0,
        filler_rows_lo: 2,
        filler_rows_hi: 3,
        seed: 5,
    })
}

fn config(shards: usize, strategy: ShardStrategy, threads: usize) -> FusionConfig {
    FusionConfig::new(12, 12)
        .with_pool_max_len(2)
        .with_seed(99)
        .with_shards(shards)
        .with_shard_strategy(strategy)
        .with_threads(threads)
}

#[test]
fn subprocess_is_bit_identical_to_in_thread_including_counters() {
    let data = planted_db();
    for strategy in ShardStrategy::ALL {
        for shards in [1usize, 2, 4] {
            let inm = PatternFusion::new(&data.db, config(shards, strategy, 1)).run();
            for threads in [1usize, 2, 8] {
                let proc = run_proc(
                    &data.db,
                    config(shards, strategy, threads),
                    subprocess(),
                    Source::Transactions,
                )
                .expect("subprocess run");
                let label = format!("{strategy:?} shards={shards} threads={threads}");
                assert_identical(&inm.patterns, &proc.patterns, &label);
                assert_eq!(inm.stats.converged, proc.stats.converged, "{label}");
                if shards > 1 {
                    // The in-thread baseline routed through the sharded
                    // engine: every per-shard counter — pool sizes,
                    // iterations, ball-query pruning, index maintenance —
                    // must survive the stats-record round trip bit-exactly.
                    assert_eq!(
                        shards_without_time(&inm.stats),
                        shards_without_time(&proc.stats),
                        "{label}: per-shard counters drifted"
                    );
                }
            }
        }
    }
}

#[test]
fn with_slab_entry_matches_in_thread_sharded_with_slab() {
    let db = colossal::datagen::diag_plus(12, 6, 9);
    let cfg = FusionConfig::new(8, 6)
        .with_seed(7)
        .with_shards(3)
        .with_shard_strategy(ShardStrategy::MinhashBucket);
    let engine = cfg.engine(&db);
    let slab = engine.fusion().mine_initial_slab();
    let inm = cfg
        .engine(&db)
        .partitioned()
        .mine(Source::Slab(slab.clone()))
        .unwrap();
    let proc = run_proc(&db, cfg, subprocess(), Source::Slab(slab)).expect("subprocess run");
    assert_identical(&inm.patterns, &proc.patterns, "with_slab");
    assert_eq!(
        shards_without_time(&inm.stats),
        shards_without_time(&proc.stats)
    );
}

#[test]
fn dead_worker_surfaces_as_a_typed_error() {
    let data = planted_db();
    let cfg = config(2, ShardStrategy::SupportStratum, 1);
    // `false` exits 1 immediately without speaking the protocol — the
    // run must fail typed (naming the shard and exit code), never hang
    // on the other worker or merge partial state.
    let ex = ExecutorKind::Subprocess(SubprocessConfig::new().with_worker_cmd("false"));
    match run_proc(&data.db, cfg, ex, Source::Transactions) {
        Err(ExecutorError::Worker(wf)) => {
            assert_eq!(wf.shard, 0, "failures collect in shard order");
            assert_eq!(wf.exit, Some(1), "{wf}");
            assert!(wf.detail.contains("worker died"), "{wf}");
        }
        other => panic!("expected a typed worker failure, got {other:?}"),
    }
}

#[test]
fn unspawnable_worker_surfaces_as_a_typed_error() {
    let data = planted_db();
    let ex = ExecutorKind::Subprocess(
        SubprocessConfig::new().with_worker_cmd("/nonexistent/cfp-worker-binary"),
    );
    match run_proc(
        &data.db,
        config(2, ShardStrategy::SupportStratum, 1),
        ex,
        Source::Transactions,
    ) {
        Err(ExecutorError::Worker(wf)) => {
            assert_eq!(wf.exit, None, "{wf}");
            assert!(wf.detail.contains("failed to spawn"), "{wf}");
        }
        other => panic!("expected a typed spawn failure, got {other:?}"),
    }
}

#[test]
fn in_process_fallback_recovers_dead_workers_bit_identically() {
    let data = planted_db();
    let inm = PatternFusion::new(&data.db, config(4, ShardStrategy::SupportStratum, 1)).run();
    // Every worker is dead on arrival; with the fallback enabled each
    // shard re-mines in-process from its spilled slab — the run succeeds
    // and stays bit-identical.
    let ex = ExecutorKind::Subprocess(
        SubprocessConfig::new()
            .with_worker_cmd("false")
            .with_fallback_in_process(true),
    );
    let rec = run_proc(
        &data.db,
        config(4, ShardStrategy::SupportStratum, 2),
        ex,
        Source::Transactions,
    )
    .expect("fallback run");
    assert_identical(&inm.patterns, &rec.patterns, "fallback");
    assert_eq!(
        shards_without_time(&inm.stats),
        shards_without_time(&rec.stats),
        "fallback: per-shard counters drifted"
    );
}

#[test]
fn stalled_worker_is_killed_at_the_deadline_and_surfaces_typed() {
    let data = planted_db();
    let dir = std::env::temp_dir().join(format!("cfp-procshard-stall-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // The worker's own CFP_FAULT (forwarded on its child environment)
    // stalls shard 0 before mining; historically `wait_with_output`
    // blocked forever here. The deadline must kill it and surface a
    // timed-out worker failure — a bounded wait, never a hang.
    let ex = ExecutorKind::Subprocess(
        SubprocessConfig::new()
            .with_worker_cmd(worker_cmd())
            .with_work_dir(&dir)
            .with_fault("stall-mine:shard0")
            .with_timeout(std::time::Duration::from_millis(400)),
    );
    let t0 = std::time::Instant::now();
    match run_proc(
        &data.db,
        config(2, ShardStrategy::SupportStratum, 1),
        ex,
        Source::Transactions,
    ) {
        Err(ExecutorError::Worker(wf)) => {
            assert_eq!(wf.shard, 0, "{wf}");
            assert!(wf.timed_out, "{wf}");
            assert!(wf.to_string().contains("[timeout]"), "{wf}");
        }
        other => panic!("expected a timed-out worker failure, got {other:?}"),
    }
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(30),
        "the deadline bounded the wait"
    );
    // The guard swept the work directory on the error path: no orphaned
    // CFPSLAB files from the killed worker.
    assert!(!dir.exists(), "timeout path left spill files behind");
}

#[test]
fn fallback_recovers_a_stalled_worker_bit_identically() {
    let data = planted_db();
    let inm = PatternFusion::new(&data.db, config(2, ShardStrategy::SupportStratum, 1)).run();
    let ex = ExecutorKind::Subprocess(
        SubprocessConfig::new()
            .with_worker_cmd(worker_cmd())
            .with_fault("stall-mine:shard0")
            .with_timeout(std::time::Duration::from_millis(400))
            .with_fallback_in_process(true),
    );
    let rec = run_proc(
        &data.db,
        config(2, ShardStrategy::SupportStratum, 2),
        ex,
        Source::Transactions,
    )
    .expect("fallback run");
    assert_identical(&inm.patterns, &rec.patterns, "stall fallback");
    assert_eq!(
        shards_without_time(&inm.stats),
        shards_without_time(&rec.stats),
        "stall fallback: per-shard counters drifted"
    );
}

#[test]
fn closure_step_requires_a_dataset_path() {
    let data = planted_db();
    let cfg = config(2, ShardStrategy::SupportStratum, 1).with_closure_step(true);
    match run_proc(&data.db, cfg, subprocess(), Source::Transactions) {
        Err(ExecutorError::Unsupported(why)) => {
            assert!(why.contains("db_path"), "{why}");
        }
        other => panic!("expected Unsupported, got {other:?}"),
    }
}

#[test]
fn non_empty_work_dir_is_refused() {
    let dir = std::env::temp_dir().join(format!("cfp-procshard-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("precious.txt"), b"do not delete").unwrap();

    let data = planted_db();
    let ex = ExecutorKind::Subprocess(
        SubprocessConfig::new()
            .with_worker_cmd(worker_cmd())
            .with_work_dir(&dir),
    );
    match run_proc(
        &data.db,
        config(2, ShardStrategy::SupportStratum, 1),
        ex,
        Source::Transactions,
    ) {
        Err(ExecutorError::Disk(OocoreError::SpillDirNotEmpty(d))) => assert_eq!(d, dir),
        other => panic!("expected SpillDirNotEmpty, got {other:?}"),
    }
    // The caller's file survives the refusal.
    assert!(dir.join("precious.txt").is_file());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn empty_pool_spawns_nothing_and_returns_empty() {
    let db = colossal::datagen::diag(4);
    let cfg = FusionConfig::new(4, 2).with_shards(2);
    // A worker command that would fail instantly proves no child is ever
    // spawned for an empty pool.
    let ex = ExecutorKind::Subprocess(
        SubprocessConfig::new().with_worker_cmd("/nonexistent/never-spawned"),
    );
    let r = run_proc(
        &db,
        cfg,
        ex,
        Source::Slab(colossal::fusion::PatternPool::new(4)),
    )
    .expect("empty pool run");
    assert!(r.patterns.is_empty());
    assert!(r.stats.shards.is_empty());
}
