//! FIMI round-trips across crates: generated datasets survive write → read
//! with identical mining results (the interchange path real users take when
//! comparing against external FIMI tools).

use colossal::itemset::{parse_fimi, write_fimi};
use colossal::miners::{closed, eclat, sort_canonical, Budget};

#[test]
fn quest_dataset_round_trips_through_fimi() {
    let db = colossal::datagen::quest(&colossal::datagen::QuestConfig {
        n_transactions: 120,
        n_items: 25,
        ..Default::default()
    });
    let mut buf = Vec::new();
    write_fimi(&db, &mut buf).unwrap();
    let back = parse_fimi(std::str::from_utf8(&buf).unwrap()).unwrap();
    assert_eq!(back.len(), db.len());

    // Mining results agree modulo the item renumbering: compare supports of
    // externalized itemsets.
    let min = 5;
    let mut a = eclat(&db, min, &Budget::unlimited()).patterns;
    let mut b = eclat(&back, min, &Budget::unlimited()).patterns;
    let ext = |db: &colossal::prelude::TransactionDb, p: &colossal::miners::MinedPattern| {
        (db.item_map().externalize(p.items.items()), p.support)
    };
    let mut ea: Vec<_> = a.drain(..).map(|p| ext(&db, &p)).collect();
    let mut eb: Vec<_> = b.drain(..).map(|p| ext(&back, &p)).collect();
    ea.sort();
    eb.sort();
    assert_eq!(ea, eb);
}

#[test]
fn diag_dataset_round_trips_with_identical_closed_sets() {
    let db = colossal::datagen::diag(12);
    let mut buf = Vec::new();
    write_fimi(&db, &mut buf).unwrap();
    let back = parse_fimi(std::str::from_utf8(&buf).unwrap()).unwrap();

    let mut a = closed(&db, 6, &Budget::unlimited()).patterns;
    let mut b = closed(&back, 6, &Budget::unlimited()).patterns;
    sort_canonical(&mut a);
    sort_canonical(&mut b);
    // diag writes integers 1..=n in order, so the renumbering is identity
    // up to the label shift; counts and support multisets must agree.
    assert_eq!(a.len(), b.len());
    let sa: Vec<usize> = a.iter().map(|p| p.support).collect();
    let sb: Vec<usize> = b.iter().map(|p| p.support).collect();
    assert_eq!(sa, sb);
}

#[test]
fn all_like_tiny_round_trips() {
    let data = colossal::datagen::all_like(&colossal::datagen::AllLikeConfig::tiny(2));
    let mut buf = Vec::new();
    write_fimi(&data.db, &mut buf).unwrap();
    let back = parse_fimi(std::str::from_utf8(&buf).unwrap()).unwrap();
    assert_eq!(back.len(), data.db.len());
    assert_eq!(back.num_items(), data.db.num_items());
    assert_eq!(back.total_occurrences(), data.db.total_occurrences());
}
