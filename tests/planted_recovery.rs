//! Pattern-Fusion must recover planted colossal patterns on every dataset
//! simulator, with exact tid-sets, across seeds.

use colossal::fusion::{FusionConfig, PatternFusion};
use colossal::itemset::Itemset;
use colossal::miners::{closed, Budget};

#[test]
fn recovers_planted_blocks_on_generic_planted_data() {
    let data = colossal::datagen::planted(&colossal::datagen::PlantedConfig {
        n_rows: 60,
        pattern_sizes: vec![24, 18, 12],
        pattern_support: 15,
        max_row_overlap: 7,
        row_len: 0,
        filler_rows_lo: 2,
        filler_rows_hi: 5,
        seed: 21,
    });
    let config = FusionConfig::new(12, 15).with_pool_max_len(2).with_seed(5);
    let result = PatternFusion::new(&data.db, config).run();
    for planted in &data.patterns {
        let hit = result.patterns.iter().find(|p| p.items == planted.items);
        let hit = hit
            .unwrap_or_else(|| panic!("planted pattern of size {} missing", planted.items.len()));
        assert_eq!(hit.tids, planted.rows, "support set must match the plant");
    }
}

#[test]
fn recovers_colossal_spectrum_on_all_like_tiny() {
    let cfg = colossal::datagen::AllLikeConfig::tiny(31);
    let data = colossal::datagen::all_like(&cfg);
    let config = FusionConfig::new(50, cfg.pattern_support)
        .with_pool_max_len(2)
        .with_closure_step(true)
        .with_seed(6);
    let result = PatternFusion::new(&data.db, config).run();
    let mut found = 0;
    for planted in &data.colossal {
        if result.patterns.iter().any(|p| p.items == planted.items) {
            found += 1;
        }
    }
    assert_eq!(
        found,
        data.colossal.len(),
        "all planted colossal patterns must be recovered"
    );
}

#[test]
fn recovers_profiles_on_replace_like_tiny() {
    let cfg = colossal::datagen::ReplaceConfig::tiny(7);
    let data = colossal::datagen::replace_like(&cfg);
    let config = FusionConfig::new(40, 18).with_pool_max_len(3).with_seed(8);
    let result = PatternFusion::new(&data.db, config).run();
    for profile in &data.profiles {
        assert!(
            result.patterns.iter().any(|p| p.items == profile.items),
            "profile of size {} missing",
            profile.items.len()
        );
    }
}

#[test]
fn fusion_matches_closed_ground_truth_on_all_like_tiny() {
    // On the tiny ALL-like instance, the closed layer above the family-core
    // sizes is exactly the planted colossal patterns; fusion + closure must
    // reproduce that slice of the ground truth.
    let cfg = colossal::datagen::AllLikeConfig::tiny(13);
    let data = colossal::datagen::all_like(&cfg);
    let ground = closed(&data.db, cfg.pattern_support, &Budget::unlimited());
    assert!(ground.complete);
    let floor = 20usize;
    let truth: Vec<&Itemset> = ground
        .patterns
        .iter()
        .map(|p| &p.items)
        .filter(|s| s.len() > floor)
        .collect();
    assert!(!truth.is_empty());

    let config = FusionConfig::new(60, cfg.pattern_support)
        .with_pool_max_len(2)
        .with_closure_step(true)
        .with_seed(14);
    let result = PatternFusion::new(&data.db, config).run();
    for t in &truth {
        assert!(
            result.patterns.iter().any(|p| &&p.items == t),
            "ground-truth colossal {t} missing"
        );
    }
}

#[test]
fn recovery_is_stable_across_rng_seeds() {
    // The probabilistic argument (Theorem 3 + Lemma 4) predicts reliable
    // recovery; verify across several seeds rather than one lucky draw.
    let data = colossal::datagen::planted(&colossal::datagen::PlantedConfig {
        n_rows: 40,
        pattern_sizes: vec![20],
        pattern_support: 12,
        max_row_overlap: 5,
        row_len: 0,
        filler_rows_lo: 2,
        filler_rows_hi: 4,
        seed: 99,
    });
    let target = &data.patterns[0].items;
    for seed in 0..8 {
        let config = FusionConfig::new(8, 12)
            .with_pool_max_len(2)
            .with_seed(seed);
        let result = PatternFusion::new(&data.db, config).run();
        assert!(
            result.patterns.iter().any(|p| &p.items == target),
            "seed {seed} failed to recover the planted pattern"
        );
    }
}
