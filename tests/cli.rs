//! End-to-end tests for the `cfp` command-line tool.

use std::process::Command;

fn cfp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cfp"))
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("cfp_cli_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn generate_stats_mine_pipeline() {
    let data = temp_path("diag_plus.dat");
    let out = cfp()
        .args(["generate", "diag-plus", "--out", data.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = cfp()
        .args(["stats", data.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("transactions:      60"), "{text}");
    assert!(text.contains("distinct items:    79"), "{text}");

    let out = cfp()
        .args([
            "mine",
            data.to_str().unwrap(),
            "--mincount",
            "20",
            "--k",
            "10",
            "--pool-len",
            "2",
            "--seed",
            "7",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // The first (largest) line must be the size-39 colossal pattern with
    // support 20, labeled with the paper's integers 41..=79.
    let first = text.lines().next().expect("non-empty mining output");
    let fields: Vec<&str> = first.split('\t').collect();
    assert_eq!(fields[0], "39", "size column: {first}");
    assert_eq!(fields[1], "20", "support column: {first}");
    assert!(fields[2].starts_with("41 42 43"), "items column: {first}");
    assert!(fields[2].ends_with("78 79"), "items column: {first}");

    std::fs::remove_file(&data).ok();
}

#[test]
fn mine_respects_relative_minsup() {
    let data = temp_path("quest.dat");
    let out = cfp()
        .args([
            "generate",
            "quest",
            "--out",
            data.to_str().unwrap(),
            "--seed",
            "3",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = cfp()
        .args([
            "mine",
            data.to_str().unwrap(),
            "--minsup",
            "0.02",
            "--k",
            "5",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // 0.02 of 1000 transactions = support ≥ 20 on every output line.
    for line in text.lines() {
        let support: usize = line.split('\t').nth(1).unwrap().parse().unwrap();
        assert!(support >= 20, "{line}");
    }
    std::fs::remove_file(&data).ok();
}

#[test]
fn bad_inputs_fail_cleanly() {
    let out = cfp().args(["mine"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing"));

    let out = cfp().args(["mine", "/nonexistent/x.dat"]).output().unwrap();
    assert!(!out.status.success());

    let out = cfp().args(["generate", "bogus"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown kind"));

    let out = cfp().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());

    let out = cfp().args(["--help"]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage"));
}
