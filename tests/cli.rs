//! End-to-end tests for the `cfp` command-line tool.

use std::process::Command;

fn cfp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cfp"))
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("cfp_cli_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn generate_stats_mine_pipeline() {
    let data = temp_path("diag_plus.dat");
    let out = cfp()
        .args(["generate", "diag-plus", "--out", data.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = cfp()
        .args(["stats", data.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("transactions:      60"), "{text}");
    assert!(text.contains("distinct items:    79"), "{text}");

    let out = cfp()
        .args([
            "mine",
            data.to_str().unwrap(),
            "--mincount",
            "20",
            "--k",
            "10",
            "--pool-len",
            "2",
            "--seed",
            "7",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // The first (largest) line must be the size-39 colossal pattern with
    // support 20, labeled with the paper's integers 41..=79.
    let first = text.lines().next().expect("non-empty mining output");
    let fields: Vec<&str> = first.split('\t').collect();
    assert_eq!(fields[0], "39", "size column: {first}");
    assert_eq!(fields[1], "20", "support column: {first}");
    assert!(fields[2].starts_with("41 42 43"), "items column: {first}");
    assert!(fields[2].ends_with("78 79"), "items column: {first}");

    std::fs::remove_file(&data).ok();
}

#[test]
fn mine_respects_relative_minsup() {
    let data = temp_path("quest.dat");
    let out = cfp()
        .args([
            "generate",
            "quest",
            "--out",
            data.to_str().unwrap(),
            "--seed",
            "3",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = cfp()
        .args([
            "mine",
            data.to_str().unwrap(),
            "--minsup",
            "0.02",
            "--k",
            "5",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // 0.02 of 1000 transactions = support ≥ 20 on every output line.
    for line in text.lines() {
        let support: usize = line.split('\t').nth(1).unwrap().parse().unwrap();
        assert!(support >= 20, "{line}");
    }
    std::fs::remove_file(&data).ok();
}

#[test]
fn bad_inputs_fail_cleanly() {
    let out = cfp().args(["mine"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing"));

    let out = cfp().args(["mine", "/nonexistent/x.dat"]).output().unwrap();
    assert!(!out.status.success());

    let out = cfp().args(["generate", "bogus"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown kind"));

    let out = cfp().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());

    let out = cfp().args(["--help"]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage"));
}

/// Run `cfp` against a damaged slab and assert the typed [`SlabIoError`]
/// text reaches stderr with a non-zero exit — never a panic.
fn assert_slab_error(args: &[&str], expect: &str) {
    let out = cfp().args(args).output().unwrap();
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "{args:?} unexpectedly succeeded");
    assert!(err.contains(expect), "{args:?}: stderr was: {err}");
    assert!(!err.contains("panic"), "{args:?}: panicked: {err}");
}

#[test]
fn damaged_slabs_fail_with_typed_errors() {
    let data = temp_path("slab_damage.dat");
    let good = temp_path("slab_damage_good.slab");
    let truncated = temp_path("slab_damage_truncated.slab");
    let corrupted = temp_path("slab_damage_corrupted.slab");

    let out = cfp()
        .args(["generate", "diag-plus", "--out", data.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = cfp()
        .args([
            "dump",
            data.to_str().unwrap(),
            "--out",
            good.to_str().unwrap(),
            "--mincount",
            "20",
            "--pool-len",
            "2",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Truncation: keep the first half of the image. Corruption: flip one
    // bit in the middle of the payload, leaving the length intact.
    let bytes = std::fs::read(&good).unwrap();
    assert!(bytes.len() > 64, "slab suspiciously small: {}", bytes.len());
    std::fs::write(&truncated, &bytes[..bytes.len() / 2]).unwrap();
    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    std::fs::write(&corrupted, &flipped).unwrap();

    for (slab, expect) in [
        (&truncated, "slab image is truncated"),
        (&corrupted, "slab CRC mismatch"),
    ] {
        assert_slab_error(&["load", slab.to_str().unwrap()], expect);
        assert_slab_error(
            &[
                "mine",
                data.to_str().unwrap(),
                "--pool",
                slab.to_str().unwrap(),
                "--mincount",
                "20",
                "--k",
                "10",
                "--seed",
                "7",
            ],
            expect,
        );
    }

    // The undamaged slab still loads, proving the failures above came
    // from the damage and not the pipeline.
    let out = cfp()
        .args(["load", good.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    for f in [&data, &good, &truncated, &corrupted] {
        std::fs::remove_file(f).ok();
    }
}

#[test]
fn process_executor_output_matches_default_engine() {
    let data = temp_path("executor_equiv.dat");
    let out = cfp()
        .args(["generate", "diag-plus", "--out", data.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());

    let mine_args = [
        "mine",
        data.to_str().unwrap(),
        "--mincount",
        "20",
        "--k",
        "10",
        "--pool-len",
        "2",
        "--seed",
        "7",
    ];
    let base = cfp()
        .args(mine_args)
        .env("CFP_SHARDS", "4")
        .output()
        .unwrap();
    assert!(
        base.status.success(),
        "{}",
        String::from_utf8_lossy(&base.stderr)
    );
    for executor in ["process", "thread"] {
        let alt = cfp()
            .args(mine_args)
            .args(["--executor", executor])
            .env("CFP_SHARDS", "4")
            .output()
            .unwrap();
        assert!(
            alt.status.success(),
            "--executor {executor}: {}",
            String::from_utf8_lossy(&alt.stderr)
        );
        assert_eq!(
            String::from_utf8_lossy(&base.stdout),
            String::from_utf8_lossy(&alt.stdout),
            "--executor {executor} drifted from the default engine"
        );
    }

    let out = cfp()
        .args(mine_args)
        .args(["--executor", "bogus"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown --executor"));

    std::fs::remove_file(&data).ok();
}

#[test]
fn malformed_shard_env_fails_before_mining() {
    let out = cfp()
        .args(["mine", "/nonexistent/never-read.dat"])
        .env("CFP_SHARDS", "fuor")
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    // The env error wins over the missing file: validation happens first.
    assert!(err.contains("invalid CFP_SHARDS='fuor'"), "{err}");

    let out = cfp()
        .args(["mine", "/nonexistent/never-read.dat"])
        .env("CFP_SHARD_STRATEGY", "banana")
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("invalid CFP_SHARD_STRATEGY='banana'"), "{err}");
}
