//! End-to-end reproduction of the introduction's scenario, scaled for test
//! speed: exhaustive mining drowns in the diagonal table's mid-sized layer
//! while Pattern-Fusion recovers the unique colossal pattern.

use colossal::fusion::{FusionConfig, PatternFusion};
use colossal::miners::{maximal, Budget};
use colossal::prelude::*;

/// Diag16 + 8 rows of a 12-item block, minsup 8 (the Diag40+20 analogue).
fn intro_db() -> TransactionDb {
    colossal::datagen::diag_plus(16, 8, 12)
}

fn colossal_target(db: &TransactionDb) -> Itemset {
    let items: Vec<u32> = (17..=28)
        .map(|i| db.item_map().internal(i).unwrap())
        .collect();
    Itemset::from_items(&items)
}

#[test]
fn exhaustive_mining_drowns_but_fusion_succeeds() {
    let db = intro_db();
    let target = colossal_target(&db);

    // The maximal layer at support 8 contains C(16,8) = 12 870 diagonal
    // patterns; a node budget a fraction of that must cap the run.
    let capped = maximal(&db, 8, &Budget::unlimited().with_max_nodes(3_000));
    assert!(!capped.complete, "budget must trip before C(16,8)");

    // Pattern-Fusion recovers the planted colossal pattern from a pool of
    // 1- and 2-itemsets.
    let config = FusionConfig::new(10, 8).with_pool_max_len(2).with_seed(1);
    let result = PatternFusion::new(&db, config).run();
    assert!(
        result.patterns.iter().any(|p| p.items == target),
        "colossal block missing"
    );
    // And its support set is exactly the 8 extra rows.
    let found = result.patterns.iter().find(|p| p.items == target).unwrap();
    assert_eq!(found.support(), 8);
    assert_eq!(found.tids.to_vec(), (16..24).collect::<Vec<_>>());
}

#[test]
fn fusion_result_is_within_k_and_frequent() {
    let db = intro_db();
    let index = VerticalIndex::new(&db);
    for k in [5, 10, 20] {
        let config = FusionConfig::new(k, 8).with_pool_max_len(2).with_seed(2);
        let result = PatternFusion::new(&db, config).run();
        assert!(result.patterns.len() <= k.max(1), "k={k}");
        for p in &result.patterns {
            assert!(p.support() >= 8, "infrequent pattern {:?}", p.items);
            assert_eq!(p.tids, index.tidset(&p.items), "stale tid-set");
        }
    }
}

#[test]
fn lemma5_holds_end_to_end() {
    let db = intro_db();
    for seed in 0..4 {
        let config = FusionConfig::new(8, 8).with_pool_max_len(2).with_seed(seed);
        let result = PatternFusion::new(&db, config).run();
        assert!(
            result.stats.min_sizes_non_decreasing(),
            "Lemma 5 violated at seed {seed}: {:?}",
            result.stats.iterations
        );
    }
}

#[test]
fn pure_diagonal_behaves_like_uniform_sampling() {
    // On Diag20 (no planted block) every fused pattern is a random mid-layer
    // pattern of size minsup complement; sizes concentrate at 10.
    let db = colossal::datagen::diag(20);
    let config = FusionConfig::new(12, 10).with_pool_max_len(2).with_seed(3);
    let result = PatternFusion::new(&db, config).run();
    assert!(!result.patterns.is_empty());
    for p in &result.patterns {
        assert!(p.len() <= 10, "support 10 caps size at 10: {:?}", p.items);
    }
    let max = result.max_pattern_len();
    assert!(max >= 9, "fusion should reach the mid layer, got {max}");
}
